//! Legality checker.
//!
//! Verifies every constraint of the ICCAD 2022/2023 F2F placement setting:
//! each standard cell on a valid die, lower-left corner on a placement row
//! and site, footprint inside a macro-free row segment, no overlap between
//! cells, and per-die utilization within the die's `max_util`.

use flow3d_db::{CellId, Design, DieId, LegalPlacement, RowLayout};
use flow3d_geom::Interval;
use std::fmt;

/// One legality violation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// Cell's die index is outside the stack.
    BadDie {
        /// Offending cell.
        cell: CellId,
        /// The out-of-range die.
        die: DieId,
    },
    /// Cell's y is not the bottom edge of any row on its die.
    OffRow {
        /// Offending cell.
        cell: CellId,
        /// The misaligned y-coordinate.
        y: i64,
    },
    /// Cell's x is not on the site grid.
    OffSite {
        /// Offending cell.
        cell: CellId,
        /// The misaligned x-coordinate.
        x: i64,
    },
    /// Cell's footprint is not contained in any macro-free segment of its
    /// row (outside the die, or overlapping a macro).
    OutsideSegment {
        /// Offending cell.
        cell: CellId,
    },
    /// Two cells on the same die and row overlap.
    Overlap {
        /// First cell (lower x).
        a: CellId,
        /// Second cell.
        b: CellId,
    },
    /// A die's standard-cell area exceeds `max_util` of its free area.
    Overutilized {
        /// The overutilized die.
        die: DieId,
        /// Standard-cell area placed on the die.
        used: i64,
        /// Maximum allowed area (`max_util · free_area`).
        allowed: i64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::BadDie { cell, die } => write!(f, "cell {cell} on invalid die {die}"),
            Violation::OffRow { cell, y } => write!(f, "cell {cell} off-row at y={y}"),
            Violation::OffSite { cell, x } => write!(f, "cell {cell} off-site at x={x}"),
            Violation::OutsideSegment { cell } => {
                write!(f, "cell {cell} outside every macro-free segment")
            }
            Violation::Overlap { a, b } => write!(f, "cells {a} and {b} overlap"),
            Violation::Overutilized { die, used, allowed } => {
                write!(f, "die {die} overutilized: {used} > {allowed}")
            }
        }
    }
}

/// Outcome of [`check_legal`].
#[derive(Debug, Clone, PartialEq, Default)]
// flow3d-tidy: allow(dead-pub) — metrics API (flow3d::metrics) for external QoR tooling
pub struct LegalityReport {
    violations: Vec<Violation>,
    truncated: bool,
}

impl LegalityReport {
    /// Maximum number of violations recorded before truncating.
    pub const MAX_RECORDED: usize = 100;

    /// `true` if no violations were found.
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty()
    }

    /// The recorded violations (at most [`Self::MAX_RECORDED`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` if more violations existed than were recorded.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    fn push(&mut self, v: Violation) {
        if self.violations.len() < Self::MAX_RECORDED {
            self.violations.push(v);
        } else {
            self.truncated = true;
        }
    }
}

impl fmt::Display for LegalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_legal() {
            return write!(f, "legal");
        }
        writeln!(
            f,
            "{} violation(s){}:",
            self.violations.len(),
            if self.truncated { "+" } else { "" }
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Checks `legal` against every placement constraint of `design`.
///
/// Builds the [`RowLayout`] internally; use [`check_legal_with_layout`] to
/// reuse a prebuilt layout.
pub fn check_legal(design: &Design, legal: &LegalPlacement) -> LegalityReport {
    let layout = RowLayout::build(design);
    check_legal_with_layout(design, &layout, legal)
}

/// [`check_legal`] with a caller-provided [`RowLayout`].
// flow3d-tidy: allow(dead-pub) — metrics API (flow3d::metrics) for external QoR tooling
pub fn check_legal_with_layout(
    design: &Design,
    layout: &RowLayout,
    legal: &LegalPlacement,
) -> LegalityReport {
    let mut report = LegalityReport::default();
    let num_dies = design.num_dies();

    // Per-die, per-row occupancy for overlap checking.
    // (die, row_index) -> Vec<(x_interval, cell)>
    let mut rows: Vec<Vec<Vec<(Interval, CellId)>>> = design
        .dies()
        .iter()
        .map(|d| vec![Vec::new(); d.num_rows()])
        .collect();
    let mut used_area = vec![0i64; num_dies];

    for i in 0..design.num_cells() {
        let cell = CellId::new(i);
        let die_id = legal.die(cell);
        if die_id.index() >= num_dies {
            report.push(Violation::BadDie { cell, die: die_id });
            continue;
        }
        let die = design.die(die_id);
        let pos = legal.pos(cell);
        let w = design.cell_width(cell, die_id);
        used_area[die_id.index()] += w * die.row_height;

        // Row alignment.
        let row = match die.row_containing(pos.y) {
            Some(r) if r.y == pos.y => r,
            _ => {
                report.push(Violation::OffRow { cell, y: pos.y });
                continue;
            }
        };
        // Site alignment.
        if (pos.x - die.outline.xlo).rem_euclid(die.site_width) != 0 {
            report.push(Violation::OffSite { cell, x: pos.x });
        }
        // Containment in a macro-free segment.
        let span = Interval::with_len(pos.x, w);
        let in_segment = layout
            .segments_in_row(die_id, row.id)
            .iter()
            .any(|&sid| layout.segment(sid).span.contains(&span));
        if !in_segment {
            report.push(Violation::OutsideSegment { cell });
            continue;
        }
        rows[die_id.index()][row.id.index()].push((span, cell));
    }

    // Overlaps: sort each row by x and compare neighbours.
    for die_rows in &mut rows {
        for row in die_rows {
            row.sort_by_key(|(span, _)| span.lo);
            for pair in row.windows(2) {
                let (a_span, a) = pair[0];
                let (b_span, b) = pair[1];
                if a_span.overlaps(&b_span) {
                    report.push(Violation::Overlap { a, b });
                }
            }
        }
    }

    // Utilization.
    for (die_idx, &used) in used_area.iter().enumerate() {
        let die_id = DieId::new(die_idx);
        let die = design.die(die_id);
        let free = design.free_area(die_id);
        let allowed = (die.max_util * free as f64).floor() as i64;
        if used > allowed {
            report.push(Violation::Overutilized {
                die: die_id,
                used,
                allowed,
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::Point;

    fn design() -> Design {
        DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("T")
                    .lib_cell(LibCellSpec::std_cell("INV", 10, 12))
                    .lib_cell(LibCellSpec::macro_cell("RAM", 200, 24)),
            )
            .die(DieSpec::new("bottom", "T", (0, 0, 1000, 48), 12, 2, 0.9))
            .die(DieSpec::new("top", "T", (0, 0, 1000, 48), 12, 2, 0.9))
            .macro_inst("ram0", "RAM", "bottom", 400, 0)
            .cell("u0", "INV")
            .cell("u1", "INV")
            .cell("u2", "INV")
            .build()
            .unwrap()
    }

    fn legal_base() -> LegalPlacement {
        let mut lp = LegalPlacement::new(3);
        lp.place(CellId::new(0), Point::new(0, 0), DieId::BOTTOM);
        lp.place(CellId::new(1), Point::new(20, 0), DieId::BOTTOM);
        lp.place(CellId::new(2), Point::new(0, 12), DieId::TOP);
        lp
    }

    #[test]
    fn valid_placement_passes() {
        let r = check_legal(&design(), &legal_base());
        assert!(r.is_legal(), "{r}");
        assert_eq!(r.to_string(), "legal");
    }

    #[test]
    fn abutting_cells_are_legal() {
        let mut lp = legal_base();
        lp.place(CellId::new(1), Point::new(10, 0), DieId::BOTTOM);
        assert!(check_legal(&design(), &lp).is_legal());
    }

    #[test]
    fn overlap_detected() {
        let mut lp = legal_base();
        lp.place(CellId::new(1), Point::new(8, 0), DieId::BOTTOM);
        let r = check_legal(&design(), &lp);
        assert!(matches!(r.violations()[0], Violation::Overlap { .. }));
    }

    #[test]
    fn same_xy_different_die_is_legal() {
        let mut lp = legal_base();
        lp.place(CellId::new(2), Point::new(0, 0), DieId::TOP);
        assert!(check_legal(&design(), &lp).is_legal());
    }

    #[test]
    fn off_row_detected() {
        let mut lp = legal_base();
        lp.place(CellId::new(0), Point::new(0, 5), DieId::BOTTOM);
        let r = check_legal(&design(), &lp);
        assert!(matches!(r.violations()[0], Violation::OffRow { y: 5, .. }));
    }

    #[test]
    fn off_site_detected() {
        let mut lp = legal_base();
        lp.place(CellId::new(0), Point::new(3, 0), DieId::BOTTOM);
        let r = check_legal(&design(), &lp);
        assert!(matches!(r.violations()[0], Violation::OffSite { x: 3, .. }));
    }

    #[test]
    fn macro_overlap_detected_as_outside_segment() {
        let mut lp = legal_base();
        lp.place(CellId::new(0), Point::new(396, 0), DieId::BOTTOM);
        let r = check_legal(&design(), &lp);
        assert!(matches!(
            r.violations()[0],
            Violation::OutsideSegment { .. }
        ));
    }

    #[test]
    fn outside_die_detected() {
        let mut lp = legal_base();
        lp.place(CellId::new(0), Point::new(996, 0), DieId::BOTTOM);
        let r = check_legal(&design(), &lp);
        assert!(matches!(
            r.violations()[0],
            Violation::OutsideSegment { .. }
        ));
    }

    #[test]
    fn bad_die_detected() {
        let mut lp = legal_base();
        lp.place(CellId::new(0), Point::new(0, 0), DieId::new(5));
        let r = check_legal(&design(), &lp);
        assert!(matches!(r.violations()[0], Violation::BadDie { .. }));
    }

    #[test]
    fn overutilization_detected() {
        // Tiny die: free area 40*12, util 0.5 allows 240; two 10-wide cells
        // use 240 -> legal; three exceed.
        let d = DesignBuilder::new("t")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("INV", 10, 12)))
            .die(DieSpec::new("bottom", "T", (0, 0, 40, 12), 12, 1, 0.5))
            .cell("u0", "INV")
            .cell("u1", "INV")
            .cell("u2", "INV")
            .build()
            .unwrap();
        let mut lp = LegalPlacement::new(3);
        lp.place(CellId::new(0), Point::new(0, 0), DieId::BOTTOM);
        lp.place(CellId::new(1), Point::new(10, 0), DieId::BOTTOM);
        lp.place(CellId::new(2), Point::new(20, 0), DieId::BOTTOM);
        let r = check_legal(&d, &lp);
        assert!(r.violations().iter().any(|v| matches!(
            v,
            Violation::Overutilized {
                used: 360,
                allowed: 240,
                ..
            }
        )));
    }

    #[test]
    fn report_display_lists_violations() {
        let mut lp = legal_base();
        lp.place(CellId::new(0), Point::new(3, 5), DieId::BOTTOM);
        let r = check_legal(&design(), &lp);
        let text = r.to_string();
        assert!(text.contains("violation"));
        assert!(!r.is_truncated());
    }
}
