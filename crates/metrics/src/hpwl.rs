//! Half-perimeter wirelength (HPWL).
//!
//! F2F-bonded dies share one plan-view coordinate system, so a net's HPWL
//! is the half-perimeter of the bounding box of all its pins regardless of
//! which die each pin sits on (inter-die hybrid-bonding terminals sit
//! directly between the dies and add no planar length). This matches the
//! ΔHPWL% comparison of Fig. 7.

use flow3d_db::{Design, InstRef, LegalPlacement, Placement3d};
use flow3d_geom::FPoint;

/// HPWL of one pin-position set: half-perimeter of the bounding box.
fn bbox_half_perimeter(points: impl IntoIterator<Item = FPoint>) -> f64 {
    let mut iter = points.into_iter();
    let Some(first) = iter.next() else {
        return 0.0;
    };
    let (mut xlo, mut xhi, mut ylo, mut yhi) = (first.x, first.x, first.y, first.y);
    for p in iter {
        xlo = xlo.min(p.x);
        xhi = xhi.max(p.x);
        ylo = ylo.min(p.y);
        yhi = yhi.max(p.y);
    }
    (xhi - xlo) + (yhi - ylo)
}

/// Total HPWL of `design` with pin positions provided by `pin_pos`.
///
/// The closure receives each net's [`InstRef`] and pin index and returns
/// the pin's plan-view position. Single-pin and empty nets contribute 0.
pub fn hpwl(design: &Design, mut pin_pos: impl FnMut(InstRef, usize) -> FPoint) -> f64 {
    design
        .nets()
        .iter()
        .map(|net| bbox_half_perimeter(net.pins.iter().map(|p| pin_pos(p.inst, p.pin))))
        .sum()
}

/// HPWL of a continuous global placement.
///
/// Cell pins use the pin offsets of the cell's nearest die (the die the
/// legalizer would initially assign); macro pins are fixed.
pub fn hpwl_global(design: &Design, global: &Placement3d) -> f64 {
    hpwl(design, |inst, pin| match inst {
        InstRef::Cell(c) => {
            let die = global.nearest_die(c, design.num_dies());
            let off = design.pin_offset(inst, pin, die);
            let p = global.pos(c);
            FPoint::new(p.x + off.x as f64, p.y + off.y as f64)
        }
        InstRef::Macro(m) => {
            let mi = &design.macros()[m.index()];
            let off = design.pin_offset(inst, pin, mi.die);
            FPoint::new((mi.pos.x + off.x) as f64, (mi.pos.y + off.y) as f64)
        }
    })
}

/// HPWL of a legal placement.
// flow3d-tidy: allow(dead-pub) — metrics API (flow3d::metrics) for external QoR tooling
pub fn hpwl_legal(design: &Design, legal: &LegalPlacement) -> f64 {
    hpwl(design, |inst, pin| match inst {
        InstRef::Cell(c) => {
            let die = legal.die(c);
            let off = design.pin_offset(inst, pin, die);
            let p = legal.pos(c);
            FPoint::new((p.x + off.x) as f64, (p.y + off.y) as f64)
        }
        InstRef::Macro(m) => {
            let mi = &design.macros()[m.index()];
            let off = design.pin_offset(inst, pin, mi.die);
            FPoint::new((mi.pos.x + off.x) as f64, (mi.pos.y + off.y) as f64)
        }
    })
}

/// Percentage HPWL increase of the legal placement over the global
/// placement — the quantity plotted in Fig. 7.
///
/// Returns 0 when the global HPWL is 0 (degenerate designs).
pub fn delta_hpwl_pct(design: &Design, global: &Placement3d, legal: &LegalPlacement) -> f64 {
    let before = hpwl_global(design, global);
    // flow3d-tidy: allow(float-eq) — exact-zero divide guard on a sum of absolute values, not a tolerance check
    if before == 0.0 {
        return 0.0;
    }
    let after = hpwl_legal(design, legal);
    (after - before) / before * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{CellId, DesignBuilder, DieId, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::Point;

    fn design() -> Design {
        DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("TA")
                    .lib_cell(
                        LibCellSpec::std_cell("INV", 10, 12)
                            .pin("A", 0, 6)
                            .pin("Y", 9, 6),
                    )
                    .lib_cell(LibCellSpec::macro_cell("RAM", 100, 24).pin("D", 50, 12)),
            )
            .technology(
                TechnologySpec::new("TB")
                    .lib_cell(
                        LibCellSpec::std_cell("INV", 6, 12)
                            .pin("A", 0, 2)
                            .pin("Y", 5, 2),
                    )
                    .lib_cell(LibCellSpec::macro_cell("RAM", 100, 24).pin("D", 50, 12)),
            )
            .die(DieSpec::new("bottom", "TA", (0, 0, 1000, 120), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 1000, 120), 12, 1, 1.0))
            .cell("u1", "INV")
            .cell("u2", "INV")
            .macro_inst("ram0", "RAM", "bottom", 500, 0)
            .net("n1", &[("u1", 1), ("u2", 0)])
            .net("n2", &[("u2", 1), ("ram0", 0)])
            .build()
            .unwrap()
    }

    #[test]
    fn legal_hpwl_matches_hand_computation() {
        let d = design();
        let mut lp = LegalPlacement::new(2);
        lp.place(CellId::new(0), Point::new(0, 0), DieId::BOTTOM); // Y pin at (9, 6)
        lp.place(CellId::new(1), Point::new(100, 12), DieId::BOTTOM); // A at (100, 18), Y at (109, 18)
                                                                      // n1: (9,6)-(100,18): 91 + 12 = 103
                                                                      // n2: (109,18)-(550,12): 441 + 6 = 447
        assert!((hpwl_legal(&d, &lp) - (103.0 + 447.0)).abs() < 1e-9);
    }

    #[test]
    fn pin_offsets_follow_die_assignment() {
        let d = design();
        let mut lp = LegalPlacement::new(2);
        // u1 on top die: Y pin offset is (5, 2) instead of (9, 6).
        lp.place(CellId::new(0), Point::new(0, 0), DieId::TOP);
        lp.place(CellId::new(1), Point::new(100, 12), DieId::BOTTOM);
        // n1: (5,2)-(100,18): 95 + 16 = 111
        // n2 unchanged: 447
        assert!((hpwl_legal(&d, &lp) - (111.0 + 447.0)).abs() < 1e-9);
    }

    #[test]
    fn global_hpwl_uses_nearest_die_offsets() {
        let d = design();
        let mut gp = Placement3d::new(2);
        gp.set_pos(CellId::new(0), flow3d_geom::FPoint::new(0.0, 0.0));
        gp.set_die_affinity(CellId::new(0), 0.9); // snaps to top
        gp.set_pos(CellId::new(1), flow3d_geom::FPoint::new(100.0, 12.0));
        let mut lp = LegalPlacement::new(2);
        lp.place(CellId::new(0), Point::new(0, 0), DieId::TOP);
        lp.place(CellId::new(1), Point::new(100, 12), DieId::BOTTOM);
        // Legal placement equals the (integral) global placement, so no
        // HPWL change.
        assert!(delta_hpwl_pct(&d, &gp, &lp).abs() < 1e-9);
    }

    #[test]
    fn single_pin_net_contributes_zero() {
        let d = DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("T")
                    .lib_cell(LibCellSpec::std_cell("INV", 10, 12).pin("A", 0, 0)),
            )
            .die(DieSpec::new("bottom", "T", (0, 0, 100, 24), 12, 1, 1.0))
            .cell("u1", "INV")
            .net("n1", &[("u1", 0)])
            .build()
            .unwrap();
        let lp = LegalPlacement::new(1);
        assert_eq!(hpwl_legal(&d, &lp), 0.0);
    }

    #[test]
    fn delta_pct_zero_for_zero_baseline() {
        // A design whose nets have zero HPWL (no nets at all).
        let empty = DesignBuilder::new("e")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("INV", 10, 12)))
            .die(DieSpec::new("bottom", "T", (0, 0, 100, 24), 12, 1, 1.0))
            .cell("u1", "INV")
            .build()
            .unwrap();
        assert_eq!(
            delta_hpwl_pct(&empty, &Placement3d::new(1), &LegalPlacement::new(1)),
            0.0
        );
    }
}
