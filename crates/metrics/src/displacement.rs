//! Cell displacement between a global and a legal placement.

use flow3d_db::{CellId, Design, LegalPlacement, Placement3d};

/// Aggregate displacement statistics over all cells of a design.
///
/// Displacement of a cell is the Manhattan distance between its
/// global-placement position and its legal position (Eq. 4). The paper
/// reports values *normalized by the row height*; for heterogeneous stacks
/// we normalize each cell by the row height of the die its global placement
/// snaps to (its origin die).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
// flow3d-tidy: allow(dead-pub) — metrics API (flow3d::metrics) for external QoR tooling
pub struct DisplacementStats {
    /// Mean normalized displacement (the paper's "Avg. Disp.").
    pub avg: f64,
    /// Maximum normalized displacement (the paper's "Max. Disp.").
    pub max: f64,
    /// Mean displacement in DBU, unnormalized.
    pub avg_dbu: f64,
    /// Maximum displacement in DBU, unnormalized.
    pub max_dbu: f64,
    /// Id of the cell attaining the maximum, if any cells exist.
    pub max_cell: Option<CellId>,
    /// Number of cells measured.
    pub num_cells: usize,
}

/// Manhattan displacement (in DBU) of one cell between its global and
/// legal positions.
///
/// # Examples
///
/// ```
/// use flow3d_db::{CellId, LegalPlacement, Placement3d};
/// use flow3d_geom::{FPoint, Point};
///
/// let mut gp = Placement3d::new(1);
/// gp.set_pos(CellId::new(0), FPoint::new(10.0, 0.0));
/// let mut lp = LegalPlacement::new(1);
/// lp.place(CellId::new(0), Point::new(13, 4), flow3d_db::DieId::BOTTOM);
/// assert_eq!(flow3d_metrics::displacement_of(&gp, &lp, CellId::new(0)), 7.0);
/// ```
// flow3d-tidy: allow(dead-pub) — metrics API (flow3d::metrics) for external QoR tooling
pub fn displacement_of(global: &Placement3d, legal: &LegalPlacement, cell: CellId) -> f64 {
    let g = global.pos(cell);
    let l = legal.pos(cell);
    (g.x - l.x as f64).abs() + (g.y - l.y as f64).abs()
}

/// Computes [`DisplacementStats`] for every cell of `design`.
///
/// Returns the default (all-zero) stats for a design without cells.
pub fn displacement_stats(
    design: &Design,
    global: &Placement3d,
    legal: &LegalPlacement,
) -> DisplacementStats {
    let n = design.num_cells();
    if n == 0 {
        return DisplacementStats::default();
    }
    let mut sum = 0.0;
    let mut sum_norm = 0.0;
    let mut max = f64::MIN;
    let mut max_norm = f64::MIN;
    let mut max_cell = CellId::new(0);
    for i in 0..n {
        let c = CellId::new(i);
        let d = displacement_of(global, legal, c);
        let origin_die = global.nearest_die(c, design.num_dies());
        let hr = design.die(origin_die).row_height as f64;
        let dn = d / hr;
        sum += d;
        sum_norm += dn;
        if dn > max_norm {
            max_norm = dn;
            max = d;
            max_cell = c;
        }
    }
    DisplacementStats {
        avg: sum_norm / n as f64,
        max: max_norm,
        avg_dbu: sum / n as f64,
        max_dbu: max,
        max_cell: Some(max_cell),
        num_cells: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_db::{DesignBuilder, DieId, DieSpec, LibCellSpec, TechnologySpec};
    use flow3d_geom::{FPoint, Point};

    fn two_die_design(n_cells: usize) -> Design {
        let mut b = DesignBuilder::new("t")
            .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("INV", 10, 12)))
            .technology(TechnologySpec::new("TB").lib_cell(LibCellSpec::std_cell("INV", 8, 24)))
            .die(DieSpec::new("bottom", "TA", (0, 0, 1000, 120), 12, 1, 1.0))
            .die(DieSpec::new("top", "TB", (0, 0, 1000, 120), 24, 1, 1.0));
        for i in 0..n_cells {
            b = b.cell(format!("u{i}"), "INV");
        }
        b.build().unwrap()
    }

    #[test]
    fn empty_design_yields_default() {
        let d = two_die_design(0);
        let s = displacement_stats(&d, &Placement3d::new(0), &LegalPlacement::new(0));
        assert_eq!(s, DisplacementStats::default());
    }

    #[test]
    fn normalization_uses_origin_die_row_height() {
        let d = two_die_design(2);
        let mut gp = Placement3d::new(2);
        // Cell 0 originates on the bottom die (h_r = 12).
        gp.set_pos(CellId::new(0), FPoint::new(0.0, 0.0));
        gp.set_die_affinity(CellId::new(0), 0.0);
        // Cell 1 originates on the top die (h_r = 24).
        gp.set_pos(CellId::new(1), FPoint::new(0.0, 0.0));
        gp.set_die_affinity(CellId::new(1), 1.0);
        let mut lp = LegalPlacement::new(2);
        lp.place(CellId::new(0), Point::new(24, 0), DieId::BOTTOM);
        lp.place(CellId::new(1), Point::new(24, 0), DieId::TOP);
        let s = displacement_stats(&d, &gp, &lp);
        // Same 24-DBU move normalizes to 2.0 on bottom, 1.0 on top.
        assert!((s.avg - 1.5).abs() < 1e-12);
        assert!((s.max - 2.0).abs() < 1e-12);
        assert_eq!(s.max_cell, Some(CellId::new(0)));
        assert_eq!(s.avg_dbu, 24.0);
    }

    #[test]
    fn zero_displacement_when_unmoved() {
        let d = two_die_design(3);
        let mut gp = Placement3d::new(3);
        let mut lp = LegalPlacement::new(3);
        for i in 0..3 {
            gp.set_pos(CellId::new(i), FPoint::new(i as f64 * 10.0, 12.0));
            lp.place(CellId::new(i), Point::new(i as i64 * 10, 12), DieId::BOTTOM);
        }
        let s = displacement_stats(&d, &gp, &lp);
        assert_eq!(s.avg, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.num_cells, 3);
    }

    #[test]
    fn fractional_gp_positions_counted_exactly() {
        let _d = two_die_design(1);
        let mut gp = Placement3d::new(1);
        gp.set_pos(CellId::new(0), FPoint::new(0.5, 0.25));
        let mut lp = LegalPlacement::new(1);
        lp.place(CellId::new(0), Point::new(0, 0), DieId::BOTTOM);
        assert!((displacement_of(&gp, &lp, CellId::new(0)) - 0.75).abs() < 1e-12);
    }
}
