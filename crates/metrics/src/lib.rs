#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Quality metrics and the legality checker.
//!
//! The paper evaluates legalizers on three quantities, all provided here:
//!
//! * **Average / maximum cell displacement** between the global placement
//!   and the legal placement, normalized by row height (Tables III–V) —
//!   [`displacement_stats`].
//! * **HPWL increase** of the legal placement over the global placement
//!   (Fig. 7) — [`hpwl`], [`delta_hpwl_pct`].
//! * **Legality** — [`check_legal`] verifies row/site alignment, die
//!   outlines, macro blockages, cell overlaps and per-die utilization.
//!
//! # Examples
//!
//! ```
//! use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
//! use flow3d_db::{LegalPlacement, Placement3d};
//! use flow3d_metrics::check_legal;
//!
//! # fn main() -> Result<(), flow3d_db::DbError> {
//! let design = DesignBuilder::new("demo")
//!     .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("INV", 10, 12)))
//!     .die(DieSpec::new("bottom", "T", (0, 0, 100, 24), 12, 1, 1.0))
//!     .cell("u1", "INV")
//!     .build()?;
//! let mut legal = LegalPlacement::new(1);
//! legal.place(0usize.into(), flow3d_geom::Point::new(10, 0), flow3d_db::DieId::BOTTOM);
//! assert!(check_legal(&design, &legal).is_legal());
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod displacement;
pub mod histogram;
pub mod hpwl;

pub use check::{check_legal, check_legal_with_layout, LegalityReport, Violation};
pub use displacement::{displacement_of, displacement_stats, DisplacementStats};
pub use histogram::{die_stats, DieStats, DisplacementHistogram};
pub use hpwl::{delta_hpwl_pct, hpwl_global, hpwl_legal};
