#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Generic minimum-cost maximum-flow solver.
//!
//! The paper observes (§III-A) that when all cells have the same width,
//! flow-based legalization reduces to an ordinary minimum-cost flow problem
//! solvable in polynomial time. This crate provides that reference solver:
//! a successive-shortest-path algorithm with Johnson potentials (Bellman–
//! Ford initialization so negative edge costs are accepted, Dijkstra for
//! the repeated searches).
//!
//! It is used by the test suite to cross-check the 3D-Flow legalizer on
//! uniform-width designs, and is a self-contained network-flow substrate.
//!
//! # Examples
//!
//! ```
//! use flow3d_mcmf::FlowNetwork;
//!
//! # fn main() -> Result<(), flow3d_mcmf::FlowError> {
//! let mut net = FlowNetwork::new(4);
//! let source = 0;
//! let sink = 3;
//! net.add_edge(source, 1, 10, 1)?;
//! net.add_edge(source, 2, 5, 4)?;
//! net.add_edge(1, 3, 8, 2)?;
//! net.add_edge(2, 3, 7, 1)?;
//! let result = net.min_cost_max_flow(source, sink)?;
//! assert_eq!(result.flow, 13);
//! assert_eq!(result.cost, 8 * 3 + 5 * 5);
//! # Ok(())
//! # }
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Handle to an edge added with [`FlowNetwork::add_edge`]; use it to read
/// the routed flow back with [`FlowNetwork::flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// flow3d-tidy: allow(dead-pub) — reference-solver API (flow3d::mcmf) kept for external flow experiments
pub struct EdgeId(usize);

/// Result of a flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
// flow3d-tidy: allow(dead-pub) — reference-solver API (flow3d::mcmf) kept for external flow experiments
pub struct FlowResult {
    /// Total flow routed from source to sink.
    pub flow: i64,
    /// Total cost of the routed flow (`Σ flow(e) · cost(e)`).
    pub cost: i64,
}

/// Errors raised by [`FlowNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
// flow3d-tidy: allow(dead-pub) — reference-solver API (flow3d::mcmf) kept for external flow experiments
pub enum FlowError {
    /// A node index is out of range.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the network.
        num_nodes: usize,
    },
    /// An edge was created with negative capacity.
    NegativeCapacity {
        /// The offending capacity.
        capacity: i64,
    },
    /// The network contains a negative-cost cycle reachable from the
    /// source, so shortest-path distances are unbounded.
    NegativeCycle,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for {num_nodes}-node network")
            }
            FlowError::NegativeCapacity { capacity } => {
                write!(f, "negative edge capacity {capacity}")
            }
            FlowError::NegativeCycle => write!(f, "negative-cost cycle reachable from source"),
        }
    }
}

impl Error for FlowError {}

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: i64,
    cost: i64,
}

/// A directed flow network with per-edge capacities and costs.
///
/// Edges may carry negative costs; [`min_cost_flow`](Self::min_cost_flow)
/// initializes node potentials with Bellman–Ford so the repeated Dijkstra
/// searches stay on non-negative reduced costs.
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    /// Forward/backward arcs interleaved: arc `2k` is the forward arc of
    /// edge `k`, arc `2k + 1` its residual reverse.
    arcs: Vec<Arc>,
    /// Adjacency: arc indices leaving each node.
    adj: Vec<Vec<usize>>,
    /// Original capacity of each forward arc (for flow read-back).
    orig_cap: Vec<i64>,
}

impl FlowNetwork {
    /// Creates a network with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            arcs: Vec::new(),
            adj: vec![Vec::new(); num_nodes],
            orig_cap: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges added with [`add_edge`](Self::add_edge).
    pub fn num_edges(&self) -> usize {
        self.orig_cap.len()
    }

    /// Adds a directed edge `from → to` with the given capacity and
    /// per-unit cost (which may be negative).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeOutOfRange`] or
    /// [`FlowError::NegativeCapacity`].
    pub fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        capacity: i64,
        cost: i64,
    ) -> Result<EdgeId, FlowError> {
        let n = self.num_nodes();
        for node in [from, to] {
            if node >= n {
                return Err(FlowError::NodeOutOfRange { node, num_nodes: n });
            }
        }
        if capacity < 0 {
            return Err(FlowError::NegativeCapacity { capacity });
        }
        let id = EdgeId(self.orig_cap.len());
        self.adj[from].push(self.arcs.len());
        self.arcs.push(Arc {
            to,
            cap: capacity,
            cost,
        });
        self.adj[to].push(self.arcs.len());
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.orig_cap.push(capacity);
        Ok(id)
    }

    /// Flow currently routed through `edge` (meaningful after a solve).
    pub fn flow(&self, edge: EdgeId) -> i64 {
        self.orig_cap[edge.0] - self.arcs[2 * edge.0].cap
    }

    /// Routes up to `max_flow` units from `source` to `sink` at minimum
    /// cost. Stops early when no augmenting path remains.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeOutOfRange`] for bad endpoints or
    /// [`FlowError::NegativeCycle`] if the graph has a negative-cost cycle
    /// reachable from `source`.
    pub fn min_cost_flow(
        &mut self,
        source: usize,
        sink: usize,
        max_flow: i64,
    ) -> Result<FlowResult, FlowError> {
        let n = self.num_nodes();
        for node in [source, sink] {
            if node >= n {
                return Err(FlowError::NodeOutOfRange { node, num_nodes: n });
            }
        }
        if source == sink || max_flow <= 0 {
            return Ok(FlowResult::default());
        }

        // Johnson potentials via Bellman-Ford (handles negative costs).
        let mut potential = self.bellman_ford(source)?;

        let mut total = FlowResult::default();
        let mut dist = vec![i64::MAX; n];
        let mut parent_arc = vec![usize::MAX; n];

        while total.flow < max_flow {
            // Dijkstra on reduced costs.
            dist.fill(i64::MAX);
            parent_arc.fill(usize::MAX);
            dist[source] = 0;
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((0i64, source)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &ai in &self.adj[u] {
                    let arc = &self.arcs[ai];
                    if arc.cap <= 0 || potential[u] == i64::MAX || potential[arc.to] == i64::MAX {
                        continue;
                    }
                    let reduced = arc.cost + potential[u] - potential[arc.to];
                    debug_assert!(reduced >= 0, "negative reduced cost {reduced}");
                    let nd = d + reduced;
                    if nd < dist[arc.to] {
                        dist[arc.to] = nd;
                        parent_arc[arc.to] = ai;
                        heap.push(Reverse((nd, arc.to)));
                    }
                }
            }
            if dist[sink] == i64::MAX {
                break; // sink unreachable: maximum flow reached
            }
            for v in 0..n {
                if dist[v] < i64::MAX && potential[v] != i64::MAX {
                    potential[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut bottleneck = max_flow - total.flow;
            let mut v = sink;
            while v != source {
                let ai = parent_arc[v];
                bottleneck = bottleneck.min(self.arcs[ai].cap);
                v = self.arcs[ai ^ 1].to;
            }
            // Augment.
            let mut v = sink;
            let mut path_cost = 0;
            while v != source {
                let ai = parent_arc[v];
                self.arcs[ai].cap -= bottleneck;
                self.arcs[ai ^ 1].cap += bottleneck;
                path_cost += self.arcs[ai].cost;
                v = self.arcs[ai ^ 1].to;
            }
            total.flow += bottleneck;
            total.cost += bottleneck * path_cost;
        }
        Ok(total)
    }

    /// Routes as much flow as possible from `source` to `sink` at minimum
    /// cost.
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_flow`](Self::min_cost_flow).
    pub fn min_cost_max_flow(
        &mut self,
        source: usize,
        sink: usize,
    ) -> Result<FlowResult, FlowError> {
        self.min_cost_flow(source, sink, i64::MAX)
    }

    /// Bellman-Ford distances from `source` over residual arcs, or
    /// [`FlowError::NegativeCycle`].
    fn bellman_ford(&self, source: usize) -> Result<Vec<i64>, FlowError> {
        let n = self.num_nodes();
        let mut dist = vec![i64::MAX; n];
        dist[source] = 0;
        for round in 0..n {
            let mut changed = false;
            for u in 0..n {
                if dist[u] == i64::MAX {
                    continue;
                }
                for &ai in &self.adj[u] {
                    let arc = &self.arcs[ai];
                    if arc.cap > 0 && dist[u] + arc.cost < dist[arc.to] {
                        dist[arc.to] = dist[u] + arc.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(dist);
            }
            if round == n - 1 {
                return Err(FlowError::NegativeCycle);
            }
        }
        Ok(dist)
    }

    /// `true` if the residual graph contains a negative-cost cycle — the
    /// standard certificate that the current flow is *not* of minimum cost.
    /// Used by tests to verify optimality.
    pub fn residual_has_negative_cycle(&self) -> bool {
        // Bellman-Ford with all-zero initialization (implicit super-source
        // connected to every node at cost 0).
        let n = self.num_nodes();
        let mut dist = vec![0i64; n];
        for round in 0..=n {
            let mut changed = false;
            for u in 0..n {
                for &ai in &self.adj[u] {
                    let arc = &self.arcs[ai];
                    if arc.cap > 0 && dist[u] + arc.cost < dist[arc.to] {
                        dist[arc.to] = dist[u] + arc.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                return false;
            }
            if round == n {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_edge_network() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5, 3).unwrap();
        let r = net.min_cost_max_flow(0, 1).unwrap();
        assert_eq!(r, FlowResult { flow: 5, cost: 15 });
        assert_eq!(net.flow(e), 5);
    }

    #[test]
    fn chooses_cheap_path_first() {
        // Two parallel 2-hop paths; cheap one saturates first.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1).unwrap();
        net.add_edge(1, 3, 4, 1).unwrap();
        net.add_edge(0, 2, 4, 10).unwrap();
        net.add_edge(2, 3, 4, 10).unwrap();
        let r = net.min_cost_flow(0, 3, 4).unwrap();
        assert_eq!(r, FlowResult { flow: 4, cost: 8 });
        let r2 = net.min_cost_flow(0, 3, 4).unwrap();
        assert_eq!(r2, FlowResult { flow: 4, cost: 80 });
    }

    #[test]
    fn respects_max_flow_cap() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 100, 1).unwrap();
        let r = net.min_cost_flow(0, 1, 7).unwrap();
        assert_eq!(r.flow, 7);
    }

    #[test]
    fn disconnected_sink_routes_nothing() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 1).unwrap();
        let r = net.min_cost_max_flow(0, 2).unwrap();
        assert_eq!(r, FlowResult::default());
    }

    #[test]
    fn negative_edge_costs_are_handled() {
        // Path through the negative edge is cheaper overall.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 5).unwrap();
        net.add_edge(1, 3, 1, -3).unwrap();
        net.add_edge(0, 2, 1, 1).unwrap();
        net.add_edge(2, 3, 1, 2).unwrap();
        let r = net.min_cost_flow(0, 3, 1).unwrap();
        assert_eq!(r, FlowResult { flow: 1, cost: 2 });
    }

    #[test]
    fn negative_cycle_detected() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 1, 1).unwrap();
        net.add_edge(1, 2, 1, -5).unwrap();
        net.add_edge(2, 1, 1, 2).unwrap();
        assert_eq!(
            net.min_cost_flow(0, 2, 1).unwrap_err(),
            FlowError::NegativeCycle
        );
    }

    #[test]
    fn bad_node_rejected() {
        let mut net = FlowNetwork::new(2);
        assert!(matches!(
            net.add_edge(0, 5, 1, 1),
            Err(FlowError::NodeOutOfRange { node: 5, .. })
        ));
        assert!(matches!(
            net.min_cost_flow(0, 9, 1),
            Err(FlowError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn negative_capacity_rejected() {
        let mut net = FlowNetwork::new(2);
        assert_eq!(
            net.add_edge(0, 1, -1, 0).unwrap_err(),
            FlowError::NegativeCapacity { capacity: -1 }
        );
    }

    #[test]
    fn source_equals_sink_is_trivial() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5, 1).unwrap();
        assert_eq!(net.min_cost_max_flow(0, 0).unwrap(), FlowResult::default());
    }

    #[test]
    fn transport_problem_assignment() {
        // 2 supplies x 2 demands transportation problem with a known
        // optimum: s0 sends 2 to d0 (cost 2) and 1 to d1 (cost 4); s1
        // sends 2 to d1 (cost 4) => total 10.
        let (src, s0, s1, d0, d1, snk) = (0, 1, 2, 3, 4, 5);
        let mut net = FlowNetwork::new(6);
        net.add_edge(src, s0, 3, 0).unwrap();
        net.add_edge(src, s1, 2, 0).unwrap();
        net.add_edge(s0, d0, 5, 1).unwrap();
        net.add_edge(s0, d1, 5, 4).unwrap();
        net.add_edge(s1, d0, 5, 6).unwrap();
        net.add_edge(s1, d1, 5, 2).unwrap();
        net.add_edge(d0, snk, 2, 0).unwrap();
        net.add_edge(d1, snk, 3, 0).unwrap();
        let r = net.min_cost_max_flow(src, snk).unwrap();
        assert_eq!(r, FlowResult { flow: 5, cost: 10 });
        assert!(!net.residual_has_negative_cycle());
    }

    /// Brute force: enumerate flow splits on a tiny 2-path network.
    #[test]
    fn matches_bruteforce_on_two_paths() {
        for (c1, c2, k1, k2, demand) in [
            (3, 3, 1, 2, 4),
            (5, 1, -2, 3, 6),
            (2, 2, 7, 7, 4),
            (4, 0, 1, 9, 3),
        ] {
            let mut net = FlowNetwork::new(4);
            net.add_edge(0, 1, c1, k1).unwrap();
            net.add_edge(1, 3, c1, 0).unwrap();
            net.add_edge(0, 2, c2, k2).unwrap();
            net.add_edge(2, 3, c2, 0).unwrap();
            let r = net.min_cost_flow(0, 3, demand).unwrap();
            // Brute force over splits (f1, f2): maximize flow, then
            // minimize cost.
            let mut best: Option<(i64, i64)> = None;
            for f1 in 0..=c1 {
                for f2 in 0..=c2 {
                    if f1 + f2 > demand {
                        continue;
                    }
                    let cand = (f1 + f2, f1 * k1 + f2 * k2);
                    best = Some(match best {
                        None => cand,
                        Some(b) if cand.0 > b.0 || (cand.0 == b.0 && cand.1 < b.1) => cand,
                        Some(b) => b,
                    });
                }
            }
            let (bf, bc) = best.unwrap();
            assert_eq!(
                (r.flow, r.cost),
                (bf, bc),
                "case {c1},{c2},{k1},{k2},{demand}"
            );
        }
    }

    proptest! {
        /// On random layered DAGs (forward edges only, negative costs
        /// allowed) the result leaves no negative residual cycle — the
        /// optimality certificate — and conserves flow at internal nodes.
        #[test]
        fn random_networks_are_optimal(
            caps in proptest::collection::vec(0i64..10, 9),
            costs in proptest::collection::vec(-3i64..10, 9),
        ) {
            let template = [(0,1),(0,2),(1,2),(1,3),(2,3),(1,4),(2,4),(3,4),(0,3)];
            let mut net = FlowNetwork::new(5);
            let mut edges = Vec::new();
            for (i, &(u, v)) in template.iter().enumerate() {
                edges.push(((u, v), net.add_edge(u, v, caps[i], costs[i]).unwrap()));
            }
            let r = net.min_cost_max_flow(0, 4).unwrap();
            prop_assert!(r.flow >= 0);
            prop_assert!(!net.residual_has_negative_cycle());
            for node in 1..4 {
                let mut balance = 0;
                for &((u, v), e) in &edges {
                    if v == node { balance += net.flow(e); }
                    if u == node { balance -= net.flow(e); }
                }
                prop_assert_eq!(balance, 0, "node {} unbalanced", node);
            }
        }
    }
}
