#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Analytical 3D global-placement substrate.
//!
//! The paper legalizes global placements produced by true-3D analytical
//! placers (\[18], \[19]) that optimize cell positions *and* a continuous
//! die assignment simultaneously. Those tools are unavailable, so this
//! crate provides a compact stand-in with the same output contract: a
//! [`Placement3d`] with continuous positions, locally dense hotspots, and
//! a soft die affinity `z ∈ [0, 1]`.
//!
//! The optimizer alternates two forces for a fixed number of iterations:
//!
//! * **Wirelength**: a star-model pull of every cell toward the centroid
//!   of each net it belongs to (the gradient of the quadratic star
//!   wirelength).
//! * **Density**: each die is rasterized into a bin grid (macro blockage
//!   included); cells in overfilled bins are pushed down the local
//!   density gradient, and the die affinity drifts toward the die with
//!   more local headroom.
//!
//! The result intentionally keeps local overflow (bins above the target
//! density): removing it *is the legalizer's job*, and the contests'
//! placers behave the same way.
//!
//! # Examples
//!
//! ```
//! use flow3d_gen::GeneratorConfig;
//! use flow3d_gp::{GlobalPlacer, GpConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let case = GeneratorConfig::small_demo(5).generate()?;
//! let placer = GlobalPlacer::new(GpConfig::default());
//! let placement = placer.place_from(&case.design, &case.natural);
//! assert_eq!(placement.num_cells(), case.design.num_cells());
//! # Ok(())
//! # }
//! ```

use flow3d_db::{CellId, Design, DieId, InstRef, Placement3d};
use flow3d_geom::FPoint;

/// Configuration of the global placer.
#[derive(Debug, Clone, PartialEq)]
pub struct GpConfig {
    /// Optimization iterations.
    pub iterations: usize,
    /// Density-grid resolution per axis.
    pub grid: usize,
    /// Target bin density in `(0, 1]`; bins above it push cells away.
    pub target_density: f64,
    /// Initial step size as a fraction of the die diagonal.
    pub step: f64,
    /// Relative weight of the density force vs the wirelength force.
    pub density_weight: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            iterations: 40,
            grid: 24,
            target_density: 1.0,
            step: 0.02,
            density_weight: 1.0,
        }
    }
}

/// The analytical 3D global placer.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlacer {
    config: GpConfig,
}

impl GlobalPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(config: GpConfig) -> Self {
        Self { config }
    }

    /// Places `design` starting from a deterministic spiral scatter over
    /// the die (used when no natural placement exists).
    pub fn place(&self, design: &Design) -> Placement3d {
        let n = design.num_cells();
        let outline = design.die(DieId::BOTTOM).outline;
        let (w, h) = (outline.width() as f64, outline.height() as f64);
        let mut init = Placement3d::new(n);
        // Deterministic low-discrepancy scatter (Kronecker sequence).
        const PHI: f64 = 0.618_033_988_749_894_9;
        const PSI: f64 = 0.754_877_666_246_693;
        for i in 0..n {
            let c = CellId::new(i);
            let fx = (i as f64 * PHI).fract();
            let fy = (i as f64 * PSI).fract();
            init.set_pos(
                c,
                FPoint::new(outline.xlo as f64 + fx * w, outline.ylo as f64 + fy * h),
            );
            init.set_die_affinity(c, if i % 2 == 0 { 0.25 } else { 0.75 });
        }
        self.place_from(design, &init)
    }

    /// Places `design` starting from `init` (typically the generator's
    /// natural placement).
    ///
    /// # Panics
    ///
    /// Panics if `init` does not have one entry per design cell.
    pub fn place_from(&self, design: &Design, init: &Placement3d) -> Placement3d {
        assert_eq!(init.num_cells(), design.num_cells(), "placement mismatch");
        let cfg = &self.config;
        let n = design.num_cells();
        if n == 0 {
            return init.clone();
        }
        let outline = design.die(DieId::BOTTOM).outline;
        let (w, h) = (outline.width() as f64, outline.height() as f64);
        let diag = (w * w + h * h).sqrt();

        let mut pos: Vec<FPoint> = (0..n).map(|i| init.pos(CellId::new(i))).collect();
        let mut z: Vec<f64> = (0..n).map(|i| init.die_affinity(CellId::new(i))).collect();

        let mut grids = DensityGrids::new(design, cfg.grid);
        let areas: Vec<[f64; 2]> = (0..n)
            .map(|i| {
                let c = CellId::new(i);
                [
                    (design.cell_width(c, DieId::BOTTOM) * design.cell_height(DieId::BOTTOM))
                        as f64,
                    (design.cell_width(c, DieId::TOP) * design.cell_height(DieId::TOP)) as f64,
                ]
            })
            .collect();

        for iter in 0..cfg.iterations {
            let step = cfg.step * diag * (1.0 - 0.8 * iter as f64 / cfg.iterations as f64);

            // Wirelength force: star model centroid pull.
            let mut force: Vec<FPoint> = vec![FPoint::default(); n];
            for net in design.nets() {
                if net.pins.len() < 2 {
                    continue;
                }
                let mut cx = 0.0;
                let mut cy = 0.0;
                let mut cells = Vec::with_capacity(net.pins.len());
                for pin in &net.pins {
                    match pin.inst {
                        InstRef::Cell(c) => {
                            let p = pos[c.index()];
                            cx += p.x;
                            cy += p.y;
                            cells.push(c.index());
                        }
                        InstRef::Macro(m) => {
                            let r = design.macro_rect(m);
                            let cen = r.center();
                            cx += cen.x as f64;
                            cy += cen.y as f64;
                        }
                    }
                }
                let k = net.pins.len() as f64;
                let (cx, cy) = (cx / k, cy / k);
                let pull = 1.0 / k;
                for &i in &cells {
                    force[i].x += (cx - pos[i].x) * pull;
                    force[i].y += (cy - pos[i].y) * pull;
                }
            }

            // Density force: rasterize, then push cells in overfilled
            // bins toward the lower-density neighbour.
            grids.rasterize(design, &pos, &z, &areas);
            for i in 0..n {
                let die_split = [1.0 - z[i], z[i]];
                let mut dx = 0.0;
                let mut dy = 0.0;
                for (die, &split) in die_split.iter().enumerate() {
                    let (gx, gy) = grids.gradient(die, pos[i], cfg.target_density);
                    dx += gx * split;
                    dy += gy * split;
                }
                force[i].x += dx * cfg.density_weight;
                force[i].y += dy * cfg.density_weight;

                // Die affinity drifts toward local headroom.
                let d_bot = grids.local_density(0, pos[i]);
                let d_top = grids.local_density(1, pos[i]);
                z[i] = (z[i] + 0.08 * (d_bot - d_top)).clamp(0.0, 1.0);
            }

            // Apply with normalized step and clamp into the outline.
            for i in 0..n {
                let f = force[i];
                let norm = (f.x * f.x + f.y * f.y).sqrt().max(1e-9);
                let scale = (step / norm).min(1.0);
                let nx =
                    (pos[i].x + f.x * scale).clamp(outline.xlo as f64, (outline.xhi - 1) as f64);
                let ny =
                    (pos[i].y + f.y * scale).clamp(outline.ylo as f64, (outline.yhi - 1) as f64);
                pos[i] = FPoint::new(nx, ny);
            }
        }

        Placement3d::from_parts(pos, z)
    }
}

/// Per-die density rasters.
#[derive(Debug)]
struct DensityGrids {
    grid: usize,
    bin_w: f64,
    bin_h: f64,
    x0: f64,
    y0: f64,
    /// Per die: bin utilization in [0, inf) relative to free bin area.
    density: [Vec<f64>; 2],
    /// Per die: fraction of each bin blocked by macros.
    blocked: [Vec<f64>; 2],
    /// Free area per bin (computed from blockage).
    bin_area: f64,
}

impl DensityGrids {
    fn new(design: &Design, grid: usize) -> Self {
        let outline = design.die(DieId::BOTTOM).outline;
        let bin_w = outline.width() as f64 / grid as f64;
        let bin_h = outline.height() as f64 / grid as f64;
        let mut blocked = [vec![0.0; grid * grid], vec![0.0; grid * grid]];
        for (die, blocked_die) in blocked.iter_mut().enumerate() {
            for rect in design.macro_rects_on(DieId::new(die)) {
                // Rasterize the macro footprint.
                let gx0 = (((rect.xlo - outline.xlo) as f64 / bin_w) as usize).min(grid - 1);
                let gx1 = (((rect.xhi - outline.xlo) as f64 / bin_w).ceil() as usize).min(grid);
                let gy0 = (((rect.ylo - outline.ylo) as f64 / bin_h) as usize).min(grid - 1);
                let gy1 = (((rect.yhi - outline.ylo) as f64 / bin_h).ceil() as usize).min(grid);
                for gy in gy0..gy1 {
                    for gx in gx0..gx1 {
                        let bin = flow3d_geom::Rect::new(
                            outline.xlo + (gx as f64 * bin_w) as i64,
                            outline.ylo + (gy as f64 * bin_h) as i64,
                            outline.xlo + ((gx + 1) as f64 * bin_w) as i64,
                            outline.ylo + ((gy + 1) as f64 * bin_h) as i64,
                        );
                        let overlap = bin.overlap_area(&rect) as f64;
                        blocked_die[gy * grid + gx] += overlap / (bin_w * bin_h).max(1.0);
                    }
                }
            }
        }
        Self {
            grid,
            bin_w,
            bin_h,
            x0: outline.xlo as f64,
            y0: outline.ylo as f64,
            density: [vec![0.0; grid * grid], vec![0.0; grid * grid]],
            blocked,
            bin_area: bin_w * bin_h,
        }
    }

    fn bin_of(&self, p: FPoint) -> (usize, usize) {
        let gx = (((p.x - self.x0) / self.bin_w) as usize).min(self.grid - 1);
        let gy = (((p.y - self.y0) / self.bin_h) as usize).min(self.grid - 1);
        (gx, gy)
    }

    fn rasterize(&mut self, _design: &Design, pos: &[FPoint], z: &[f64], areas: &[[f64; 2]]) {
        for die in 0..2 {
            self.density[die].fill(0.0);
        }
        for i in 0..pos.len() {
            let (gx, gy) = self.bin_of(pos[i]);
            let idx = gy * self.grid + gx;
            self.density[0][idx] += areas[i][0] * (1.0 - z[i]) / self.bin_area;
            self.density[1][idx] += areas[i][1] * z[i] / self.bin_area;
        }
        // Add macro blockage so blocked bins read as full.
        for die in 0..2 {
            for idx in 0..self.grid * self.grid {
                self.density[die][idx] += self.blocked[die][idx];
            }
        }
    }

    /// Effective density around `p` on `die`.
    fn local_density(&self, die: usize, p: FPoint) -> f64 {
        let (gx, gy) = self.bin_of(p);
        self.density[die][gy * self.grid + gx]
    }

    /// Unit-ish gradient pushing away from overfilled bins toward the
    /// least-dense 4-neighbour; zero when the bin is under target.
    fn gradient(&self, die: usize, p: FPoint, target: f64) -> (f64, f64) {
        let (gx, gy) = self.bin_of(p);
        let here = self.density[die][gy * self.grid + gx];
        if here <= target {
            return (0.0, 0.0);
        }
        let mut best = (0.0, 0.0);
        let mut best_d = here;
        let g = self.grid as i64;
        for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let nx = gx as i64 + dx;
            let ny = gy as i64 + dy;
            if nx < 0 || ny < 0 || nx >= g || ny >= g {
                continue;
            }
            let d = self.density[die][(ny * g + nx) as usize];
            if d < best_d {
                best_d = d;
                best = (dx as f64, dy as f64);
            }
        }
        let strength = (here - best_d).min(4.0);
        (best.0 * strength, best.1 * strength)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow3d_gen::GeneratorConfig;

    fn case() -> flow3d_gen::GeneratedCase {
        GeneratorConfig::small_demo(31).generate().unwrap()
    }

    #[test]
    fn positions_stay_in_outline() {
        let case = case();
        let gp = GlobalPlacer::default().place_from(&case.design, &case.natural);
        let outline = case.design.die(DieId::BOTTOM).outline;
        for i in 0..gp.num_cells() {
            let p = gp.pos(CellId::new(i));
            assert!(p.x >= outline.xlo as f64 && p.x < outline.xhi as f64);
            assert!(p.y >= outline.ylo as f64 && p.y < outline.yhi as f64);
            let z = gp.die_affinity(CellId::new(i));
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn placement_improves_wirelength_over_scatter() {
        let case = case();
        let placer = GlobalPlacer::default();
        let scattered = placer.place(&case.design);
        let before = flow3d_metrics::hpwl_global(&case.design, &scattered);
        // Optimize from the scatter: HPWL must come down.
        let after_p = placer.place_from(&case.design, &scattered);
        let after = flow3d_metrics::hpwl_global(&case.design, &after_p);
        assert!(after < before, "HPWL did not improve: {before} -> {after}");
    }

    #[test]
    fn density_spreading_reduces_worst_bin() {
        let case = case();
        let cfg = GpConfig::default();
        let n = case.design.num_cells();
        let areas: Vec<[f64; 2]> = (0..n)
            .map(|i| {
                let c = CellId::new(i);
                let d = &case.design;
                [
                    (d.cell_width(c, DieId::BOTTOM) * d.cell_height(DieId::BOTTOM)) as f64,
                    (d.cell_width(c, DieId::TOP) * d.cell_height(DieId::TOP)) as f64,
                ]
            })
            .collect();
        let worst = |p: &Placement3d| {
            let mut g = DensityGrids::new(&case.design, cfg.grid);
            let pos: Vec<FPoint> = (0..n).map(|i| p.pos(CellId::new(i))).collect();
            let z: Vec<f64> = (0..n).map(|i| p.die_affinity(CellId::new(i))).collect();
            g.rasterize(&case.design, &pos, &z, &areas);
            g.density
                .iter()
                .flat_map(|d| d.iter())
                .cloned()
                .fold(0.0f64, f64::max)
        };
        let before = worst(&case.natural);
        let placed = GlobalPlacer::new(cfg.clone()).place_from(&case.design, &case.natural);
        let after = worst(&placed);
        assert!(
            after <= before,
            "worst bin density rose: {before:.2} -> {after:.2}"
        );
    }

    #[test]
    fn deterministic() {
        let case = case();
        let a = GlobalPlacer::default().place_from(&case.design, &case.natural);
        let b = GlobalPlacer::default().place_from(&case.design, &case.natural);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_design_is_fine() {
        let d = flow3d_db::DesignBuilder::new("e")
            .technology(
                flow3d_db::TechnologySpec::new("T")
                    .lib_cell(flow3d_db::LibCellSpec::std_cell("C", 1, 1)),
            )
            .die(flow3d_db::DieSpec::new(
                "bottom",
                "T",
                (0, 0, 10, 10),
                1,
                1,
                1.0,
            ))
            .die(flow3d_db::DieSpec::new(
                "top",
                "T",
                (0, 0, 10, 10),
                1,
                1,
                1.0,
            ))
            .build()
            .unwrap();
        let p = GlobalPlacer::default().place(&d);
        assert_eq!(p.num_cells(), 0);
    }
}
