#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Resident legalization service for the 3D-Flow reproduction.
//!
//! `flow3d serve` keeps parsed designs, their bin-grid adjacency, and
//! per-worker search scratch resident in one long-lived process, so the
//! per-request cost of an ECO drops to the incremental work itself —
//! the dominant parse/build/allocate cost is paid once at `load`. The
//! crate has three layers:
//!
//! * [`protocol`] — the wire format: 4-byte big-endian length-prefixed
//!   JSON frames (built on [`flow3d_obs::Json`], std only), the
//!   [`protocol::Request`] schema, response shapes, and error codes.
//! * [`server`] — [`Server`]: case registry of warm
//!   [`flow3d_core::EcoEngine`]s, bounded FIFO admission queue, and a
//!   dispatcher that shards independent cases across the `flow3d-par`
//!   pool wave by wave while keeping each case's request stream
//!   serialized (the warm caches and the determinism contract depend on
//!   that). Every request is timed into a server-level latency
//!   histogram and answered with a per-request telemetry-v2 run report.
//!   Live telemetry rides on `flow3d-obs` v3: a rolling window of
//!   per-request samples behind the `metrics` wire command (windowed
//!   p50/p90/p99 latency, throughput, queue depth, error rate — JSON
//!   and Prometheus text), a structured JSONL event log
//!   ([`ServerConfig::log_path`]), a flight recorder dumped on request
//!   errors and shutdown ([`ServerConfig::flight_path`]), and
//!   per-request Chrome-trace export ([`ServerConfig::trace_dir`]).
//! * [`client`] — [`Client`]: a small blocking client over any
//!   `Read + Write` stream, used by `flow3d request` and the tests.
//!
//! The protocol and operational model are specified in `SERVING.md` at
//! the repository root. Results over the service are bit-identical to
//! the one-shot CLI on the same inputs; residency only carries reusable
//! capacity, never state that can influence a result.
//!
//! # Example
//!
//! An in-process round trip over a Unix socket pair:
//!
//! ```
//! # #[cfg(unix)] fn main() {
//! use flow3d_serve::{Client, Json, Server, ServerConfig};
//!
//! let server = Server::new(ServerConfig::default()).unwrap();
//! let (ours, theirs) = std::os::unix::net::UnixStream::pair().unwrap();
//! let handler = server.clone();
//! std::thread::spawn(move || handler.handle_connection(theirs));
//!
//! let mut client = Client::new(ours);
//! let ping = Json::parse(r#"{"cmd": "ping", "id": 1}"#).unwrap();
//! let reply = client.request(&ping).unwrap();
//! assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
//!
//! let bye = Json::parse(r#"{"cmd": "shutdown"}"#).unwrap();
//! client.request(&bye).unwrap();
//! server.join();
//! # }
//! # #[cfg(not(unix))] fn main() {}
//! ```

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError};
pub use flow3d_obs::Json;
pub use protocol::{read_frame, write_frame, FrameError, MoveSpec, Request, MAX_FRAME};
pub use server::{Server, ServerConfig};
