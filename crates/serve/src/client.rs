//! A minimal blocking client for the serve protocol.
//!
//! [`Client`] wraps any `Read + Write` stream, frames requests with
//! [`crate::protocol::write_frame`], and blocks for the matching
//! response (the protocol answers requests on a connection strictly in
//! order, so no correlation machinery is needed). It is what `flow3d
//! request` and the integration tests use; serious clients in other
//! languages only need the ~40 lines of framing in `SERVING.md`.

use crate::protocol::{read_frame, write_frame, FrameError};
use flow3d_obs::Json;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking request/response client over one connection.
pub struct Client<S> {
    stream: S,
}

/// A client-side request failure.
#[derive(Debug)]
// flow3d-tidy: allow(dead-pub) — wire-protocol API (flow3d::serve) for out-of-tree clients
pub enum ClientError {
    /// Framing or transport failed.
    Frame(FrameError),
    /// The server closed the connection before answering.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Client::new(TcpStream::connect(addr)?))
    }
}

#[cfg(unix)]
impl Client<std::os::unix::net::UnixStream> {
    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_unix(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Client::new(std::os::unix::net::UnixStream::connect(path)?))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream (a `UnixStream::pair` half, a
    /// TCP stream, anything `Read + Write`).
    pub fn new(stream: S) -> Self {
        Client { stream }
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or if the server closes
    /// before answering. A server-side *refusal* is not an error here —
    /// inspect the returned response's `"ok"` field.
    pub fn request(&mut self, request: &Json) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)?.ok_or(ClientError::Closed)
    }

    /// Consumes the client and returns the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }
}
