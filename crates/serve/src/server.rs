//! The resident legalization server.
//!
//! A [`Server`] owns a registry of resident cases (each a warm
//! [`flow3d_core::EcoEngine`]), a bounded FIFO request queue, and a
//! dispatcher thread that executes queued requests in **waves**: every
//! wave holds at most one request per case, and the wave's requests run
//! concurrently on the `flow3d-par` pool. Independent cases therefore
//! shard across workers while each case's engine sees a strictly
//! serialized request stream — which is what keeps its warm caches and
//! the determinism contract intact.
//!
//! Connection handling is transport-agnostic: [`Server::handle_connection`]
//! speaks the frame protocol over any `Read + Write` stream, and
//! [`Server::serve_tcp`] / [`Server::serve_unix`] provide the usual
//! listeners. A server is cheaply cloneable (it is an [`Arc`] over its
//! shared state), so tests can drive it over an in-process socket pair
//! while a listener thread serves real clients.
//!
//! Lifecycle: `load` → any number of `eco`/`legalize` → `shutdown`. A
//! `shutdown` request closes admission immediately (later queued
//! requests are refused with [`codes::SHUTTING_DOWN`]), drains every
//! previously admitted request, answers the shutdown itself, and stops
//! the dispatcher. See `SERVING.md` for the operational details.

use crate::protocol::{
    codes, error_response, ok_response, read_frame, request_id, write_frame, FrameError, MoveSpec,
    Request,
};
use flow3d_core::{CellMove, EcoEngine, Flow3dConfig, Flow3dLegalizer, LegalizeStats, Legalizer};
use flow3d_db::DieId;
use flow3d_geom::Point;
use flow3d_obs::{
    hist_keys, keys, log_record, peak_rss_bytes, EventLog, FlightRecorder, Json, LogLevel, Profile,
    RequestSample, RollingWindow, RunReport,
};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Server tuning knobs. The defaults favour predictability:
/// single-threaded engines plus two wave workers that overlap
/// independent cases. Results *and* warm-memo telemetry are
/// bit-identical at every setting — the engines absorb shared-memo
/// writes in deterministic source order — so these knobs trade
/// wall-clock only.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queued requests executed concurrently per wave (each on
    /// a distinct case). `0` resolves like `flow3d_par::resolve_threads`.
    pub workers: usize,
    /// Bounded queue depth; requests beyond it are refused with
    /// [`codes::OVERLOADED`] instead of buffering without limit.
    pub queue_depth: usize,
    /// Engine threads for cases loaded without an explicit `threads`
    /// field. Results and memo-hit telemetry are bit-identical at any
    /// value; `1` (the default) avoids oversubscribing the wave
    /// workers on small cases.
    pub default_threads: usize,
    /// JSONL event-log path (`--log` / `FLOW3D_LOG`). `None` disables
    /// structured logging; the event path then costs one branch.
    pub log_path: Option<String>,
    /// Minimum severity written to the event log.
    pub log_level: LogLevel,
    /// Flight-recorder sidecar path. When set, recent events and the
    /// last few per-request reports are retained in memory and dumped
    /// here on a request error and at shutdown.
    pub flight_path: Option<String>,
    /// Directory for per-request Chrome traces (`--trace`). Every
    /// queued request records a trace and writes
    /// `<dir>/<case>_r<id>.trace.json`, span process tagged
    /// `case#r<id>`.
    pub trace_dir: Option<String>,
    /// Sample capacity of the rolling metrics window.
    pub window_capacity: usize,
    /// Length of the rolling metrics window, in seconds.
    pub window_secs: u64,
    /// Flight-recorder event-ring capacity.
    pub recorder_events: usize,
    /// Flight-recorder per-request report-ring capacity.
    pub recorder_reports: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 64,
            default_threads: 1,
            log_path: None,
            log_level: LogLevel::Info,
            flight_path: None,
            trace_dir: None,
            window_capacity: 1024,
            window_secs: 60,
            recorder_events: 256,
            recorder_reports: 8,
        }
    }
}

/// One resident case: the warm engine plus per-case request counters.
struct CaseSlot {
    engine: EcoEngine,
    ecos: u64,
    legalizes: u64,
}

/// A queued request together with its response channel.
struct Job {
    id: u64,
    span: u64,
    request: Request,
    respond: mpsc::Sender<Json>,
}

/// The portion of a job that crosses into the wave workers. Split from
/// [`Job`] because [`mpsc::Sender`] is not `Sync`: the dispatcher keeps
/// the senders and only the `(id, span, request)` triples are shared.
struct Work {
    id: u64,
    span: u64,
    request: Request,
}

/// What a wave worker produces: the wire response plus the request's
/// profile, merged into the server-level telemetry by the dispatcher.
struct Executed {
    response: Json,
    profile: Option<Profile>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

/// Aggregated server telemetry: request/error counts plus a [`Profile`]
/// holding merged per-request phases, counters, and the
/// [`hist_keys::SERVE_REQUEST_MICROS`] latency histogram.
struct ServerStats {
    profile: Profile,
    requests: u64,
    errors: u64,
}

/// Live-telemetry state behind one mutex: the rolling metrics window
/// (always fed — it is what the `metrics` command reads) and the flight
/// recorder (fed only when a dump path is configured).
struct Telemetry {
    window: RollingWindow,
    recorder: FlightRecorder,
}

struct Shared {
    config: ServerConfig,
    registry: Mutex<BTreeMap<String, Arc<Mutex<CaseSlot>>>>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    next_id: AtomicU64,
    next_span: AtomicU64,
    next_event: AtomicU64,
    started: Instant,
    telemetry: Mutex<Telemetry>,
    log: Option<EventLog>,
    stats: Mutex<ServerStats>,
    done: Mutex<bool>,
    done_cv: Condvar,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The resident legalization service. Cheap to clone; all clones share
/// one registry, queue, and dispatcher. See the module docs for the
/// execution model.
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Starts a server: opens the configured telemetry sinks, spawns
    /// the dispatcher thread, and returns a handle ready for
    /// [`handle_connection`](Self::handle_connection) or the listener
    /// loops.
    ///
    /// Dropping every clone without sending a `shutdown` request leaves
    /// the dispatcher parked on its queue until process exit; send
    /// `shutdown` (and [`join`](Self::join)) for a clean stop.
    ///
    /// # Errors
    ///
    /// Fails if the event-log file cannot be created or the trace
    /// directory cannot be made. A default config opens no sinks and
    /// cannot fail.
    pub fn new(config: ServerConfig) -> std::io::Result<Server> {
        let log = match &config.log_path {
            Some(path) => Some(EventLog::to_file(path, config.log_level)?),
            None => None,
        };
        if let Some(dir) = &config.trace_dir {
            std::fs::create_dir_all(dir)?;
        }
        let telemetry = Telemetry {
            window: RollingWindow::new(
                config.window_capacity,
                config.window_secs.saturating_mul(1_000_000),
            ),
            recorder: FlightRecorder::new(config.recorder_events, config.recorder_reports),
        };
        let server = Server {
            shared: Arc::new(Shared {
                config,
                registry: Mutex::new(BTreeMap::new()),
                queue: Mutex::new(QueueState::default()),
                queue_cv: Condvar::new(),
                next_id: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                next_event: AtomicU64::new(0),
                started: Instant::now(),
                telemetry: Mutex::new(telemetry),
                log,
                stats: Mutex::new(ServerStats {
                    profile: Profile::new(),
                    requests: 0,
                    errors: 0,
                }),
                done: Mutex::new(false),
                done_cv: Condvar::new(),
                dispatcher: Mutex::new(None),
            }),
        };
        let worker = server.clone();
        let handle = std::thread::spawn(move || worker.dispatch_loop());
        *lock(&server.shared.dispatcher) = Some(handle);
        Ok(server)
    }

    /// Microseconds since the server started — the epoch for metrics
    /// samples and event timestamps.
    fn uptime_micros(&self) -> u64 {
        self.shared.started.elapsed().as_micros() as u64
    }

    /// Whether any structured-event sink (JSONL log or flight
    /// recorder) is configured. When neither is, the whole event path
    /// collapses to this one branch.
    fn events_on(&self) -> bool {
        self.shared.log.is_some() || self.shared.config.flight_path.is_some()
    }

    /// Emits one structured event to the log and the flight recorder.
    fn emit(&self, level: LogLevel, event: &str, fields: Vec<(String, Json)>) {
        if !self.events_on() {
            return;
        }
        let seq = self.shared.next_event.fetch_add(1, Ordering::Relaxed);
        let record = log_record(seq, self.uptime_micros(), level, event, fields);
        if self.shared.config.flight_path.is_some() {
            lock(&self.shared.telemetry)
                .recorder
                .note_event(record.clone());
        }
        if let Some(log) = &self.shared.log {
            log.write(level, &record);
        }
    }

    /// Writes the flight-recorder dump to the configured sidecar path.
    /// A no-op without a path; a failed write becomes a warn event
    /// rather than an error — telemetry must not take the service down.
    fn flight_dump(&self, reason: &str) {
        let Some(path) = &self.shared.config.flight_path else {
            return;
        };
        let uptime = self.shared.started.elapsed().as_secs_f64();
        let dump = lock(&self.shared.telemetry).recorder.dump(reason, uptime);
        if std::fs::write(path, format!("{dump}\n")).is_err() {
            self.emit(
                LogLevel::Warn,
                "flight_dump_failed",
                vec![("path".into(), Json::Str(path.clone()))],
            );
        }
    }

    /// Whether a `shutdown` request has fully drained the queue and
    /// stopped the dispatcher.
    pub fn is_done(&self) -> bool {
        *lock(&self.shared.done)
    }

    /// Blocks until the server is done (see [`is_done`](Self::is_done))
    /// and joins the dispatcher thread.
    pub fn join(&self) {
        let mut done = lock(&self.shared.done);
        while !*done {
            done = self
                .shared
                .done_cv
                .wait(done)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(done);
        let handle = lock(&self.shared.dispatcher).take();
        if let Some(handle) = handle {
            // The dispatcher only signals `done` on its way out; a join
            // failure would mean it panicked, which merge/execute paths
            // do not do.
            let _ = handle.join();
        }
    }

    /// Serves connections from `listener` until shutdown. Each
    /// connection gets its own thread running
    /// [`handle_connection`](Self::handle_connection).
    ///
    /// # Errors
    ///
    /// Propagates listener `accept` errors other than shutdown.
    pub fn serve_listener(&self, listener: TcpListener) -> std::io::Result<()> {
        let addr = listener.local_addr()?;
        // Breaking a blocking accept loop needs a poke: once the
        // dispatcher drains, this helper self-connects so accept()
        // returns and the loop observes `done`.
        let poker = self.clone();
        std::thread::spawn(move || {
            poker.join();
            let _ = TcpStream::connect(addr);
        });
        loop {
            let (stream, _) = listener.accept()?;
            if self.is_done() {
                return Ok(());
            }
            let server = self.clone();
            std::thread::spawn(move || server.handle_connection(stream));
        }
    }

    /// Binds `addr` and serves TCP connections until shutdown.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept errors.
    pub fn serve_tcp(&self, addr: impl ToSocketAddrs) -> std::io::Result<()> {
        self.serve_listener(TcpListener::bind(addr)?)
    }

    /// Binds `path` and serves Unix-domain connections until shutdown.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept errors.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::{UnixListener, UnixStream};
        let listener = UnixListener::bind(path)?;
        let poke_path = path.to_path_buf();
        let poker = self.clone();
        std::thread::spawn(move || {
            poker.join();
            let _ = UnixStream::connect(&poke_path);
        });
        loop {
            let (stream, _) = listener.accept()?;
            if self.is_done() {
                std::fs::remove_file(path).ok();
                return Ok(());
            }
            let server = self.clone();
            std::thread::spawn(move || server.handle_connection(stream));
        }
    }

    /// Speaks the frame protocol over `stream` until the peer closes,
    /// a malformed frame arrives (answered once, then the connection is
    /// dropped — framing is unrecoverable after garbage), or a
    /// `shutdown` response is written.
    ///
    /// Requests on one connection are handled strictly in order;
    /// concurrency comes from opening several connections.
    pub fn handle_connection<S: Read + Write>(&self, mut stream: S) {
        loop {
            let json = match read_frame(&mut stream) {
                Ok(Some(json)) => json,
                Ok(None) => return,
                Err(FrameError::Io(_)) => return,
                Err(err) => {
                    let response = error_response(0, codes::MALFORMED_FRAME, &err.to_string());
                    self.note_outcome(&response);
                    self.emit(
                        LogLevel::Error,
                        "request_failed",
                        vec![
                            ("code".into(), Json::Str(codes::MALFORMED_FRAME.into())),
                            ("message".into(), Json::Str(err.to_string())),
                        ],
                    );
                    self.flight_dump("request_error");
                    let _ = write_frame(&mut stream, &response);
                    return;
                }
            };
            let rid = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
            let id = request_id(&json).unwrap_or(rid);
            let is_shutdown = matches!(json.get("cmd").and_then(Json::as_str), Some("shutdown"));
            let response = match Request::parse(&json) {
                Ok(request) => self.process(id, request),
                Err(msg) => error_response(id, codes::BAD_REQUEST, &msg),
            };
            let accepted_shutdown = is_shutdown && response.get("ok") == Some(&Json::Bool(true));
            if write_frame(&mut stream, &response).is_err() {
                return;
            }
            if accepted_shutdown {
                return;
            }
        }
    }

    /// Handles one parsed request end to end and returns the response.
    /// Inline commands answer immediately; queued commands block until
    /// the dispatcher executes them, so the recorded latency covers the
    /// queue wait.
    pub fn process(&self, id: u64, request: Request) -> Json {
        let admitted = Instant::now();
        let span = self.shared.next_span.fetch_add(1, Ordering::Relaxed);
        if self.events_on() {
            let mut fields = vec![
                ("span".into(), Json::num(span as f64)),
                ("id".into(), Json::num(id as f64)),
                ("cmd".into(), Json::Str(request.cmd().to_string())),
            ];
            if let Some(case) = request.case_name() {
                fields.push(("case".into(), Json::Str(case.to_string())));
            }
            fields.push((
                "queue_depth".into(),
                Json::num(lock(&self.shared.queue).jobs.len() as f64),
            ));
            self.emit(LogLevel::Info, "request_admitted", fields);
        }
        let response = match request {
            Request::Ping => ok_response(id, vec![("pong".into(), Json::Bool(true))]),
            Request::Stats => self.stats_response(id),
            Request::Metrics => self.metrics_response(id),
            Request::Unload { name } => {
                let removed = lock(&self.shared.registry).remove(&name).is_some();
                self.emit(
                    LogLevel::Info,
                    "engine_unloaded",
                    vec![
                        ("span".into(), Json::num(span as f64)),
                        ("case".into(), Json::Str(name.clone())),
                        ("was_resident".into(), Json::Bool(removed)),
                    ],
                );
                ok_response(
                    id,
                    vec![
                        ("name".into(), Json::Str(name)),
                        ("unloaded".into(), Json::Bool(removed)),
                    ],
                )
            }
            queued => self.enqueue_and_wait(id, span, queued),
        };
        let micros = admitted.elapsed().as_secs_f64() * 1e6;
        let ok = response.get("ok") == Some(&Json::Bool(true));
        let mut stats = lock(&self.shared.stats);
        stats
            .profile
            .record(hist_keys::SERVE_REQUEST_MICROS, micros);
        drop(stats);
        lock(&self.shared.telemetry).window.record(RequestSample {
            end_micros: self.uptime_micros(),
            latency_micros: micros as u64,
            ok,
        });
        self.note_outcome(&response);
        if self.events_on() {
            let mut fields = vec![
                ("span".into(), Json::num(span as f64)),
                ("id".into(), Json::num(id as f64)),
                ("latency_micros".into(), Json::num(micros)),
            ];
            if ok {
                self.emit(LogLevel::Info, "request_completed", fields);
            } else {
                if let Some(code) = response
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                {
                    fields.push(("code".into(), Json::Str(code.to_string())));
                }
                self.emit(LogLevel::Error, "request_failed", fields);
            }
        }
        if !ok {
            self.flight_dump("request_error");
        }
        response
    }

    /// Rolling-window gauges, answered inline. The snapshot is taken
    /// *before* this request's own sample is recorded, so the counts a
    /// test observes are exactly the requests completed beforehand.
    fn metrics_response(&self, id: u64) -> Json {
        let now = self.uptime_micros();
        let queue_depth = lock(&self.shared.queue).jobs.len();
        let mut snapshot = lock(&self.shared.telemetry)
            .window
            .snapshot(now, queue_depth);
        // Stamp the lifetime memo hit rate from the merged counter
        // profile: `null` only when the memo is disabled (or nothing
        // has searched yet), `0.0` when it is on but cold.
        snapshot.selection_memo_hit_rate = {
            let stats = lock(&self.shared.stats);
            RunReport::from_profile("flow3d-serve", "flow3d-serve", &stats.profile)
                .selection_memo_hit_rate()
        };
        ok_response(
            id,
            vec![
                ("window".into(), snapshot.to_json()),
                ("prometheus".into(), Json::Str(snapshot.to_prometheus())),
                (
                    "uptime_secs".into(),
                    Json::num(self.shared.started.elapsed().as_secs_f64()),
                ),
            ],
        )
    }

    fn note_outcome(&self, response: &Json) {
        let mut stats = lock(&self.shared.stats);
        stats.requests += 1;
        if response.get("ok") != Some(&Json::Bool(true)) {
            stats.errors += 1;
        }
    }

    fn enqueue_and_wait(&self, id: u64, span: u64, request: Request) -> Json {
        let (respond, receive) = mpsc::channel();
        {
            let mut queue = lock(&self.shared.queue);
            if queue.shutting_down {
                return error_response(
                    id,
                    codes::SHUTTING_DOWN,
                    "the server is draining and admits no new work",
                );
            }
            if queue.jobs.len() >= self.shared.config.queue_depth {
                return error_response(
                    id,
                    codes::OVERLOADED,
                    &format!(
                        "request queue is full ({} pending)",
                        self.shared.config.queue_depth
                    ),
                );
            }
            if matches!(request, Request::Shutdown) {
                // Close admission under the same lock that admits the
                // shutdown job: nothing can slip in behind it.
                queue.shutting_down = true;
            }
            queue.jobs.push_back(Job {
                id,
                span,
                request,
                respond,
            });
            self.shared.queue_cv.notify_all();
        }
        receive.recv().unwrap_or_else(|_| {
            error_response(id, codes::SHUTTING_DOWN, "the server stopped mid-request")
        })
    }

    /// The dispatcher: pops waves off the queue and runs each wave on
    /// the `flow3d-par` pool. Exits after answering a shutdown job.
    fn dispatch_loop(&self) {
        let mut wave_index: u64 = 0;
        loop {
            let wave = self.next_wave();
            if wave.len() == 1 && matches!(wave[0].request, Request::Shutdown) {
                let job = &wave[0];
                let _ = job.respond.send(ok_response(
                    job.id,
                    vec![("stopped".into(), Json::Bool(true))],
                ));
                break;
            }
            let mut senders = Vec::with_capacity(wave.len());
            let mut work = Vec::with_capacity(wave.len());
            for job in wave {
                senders.push(job.respond);
                work.push(Work {
                    id: job.id,
                    span: job.span,
                    request: job.request,
                });
            }
            if self.events_on() {
                self.emit(
                    LogLevel::Debug,
                    "wave_start",
                    vec![
                        ("wave".into(), Json::num(wave_index as f64)),
                        ("size".into(), Json::num(work.len() as f64)),
                    ],
                );
                for w in &work {
                    let mut fields = vec![
                        ("span".into(), Json::num(w.span as f64)),
                        ("id".into(), Json::num(w.id as f64)),
                        ("wave".into(), Json::num(wave_index as f64)),
                        ("cmd".into(), Json::Str(w.request.cmd().to_string())),
                    ];
                    if let Some(case) = w.request.case_name() {
                        fields.push(("case".into(), Json::Str(case.to_string())));
                    }
                    self.emit(LogLevel::Info, "request_dispatched", fields);
                }
            }
            let workers = flow3d_par::resolve_threads(self.shared.config.workers);
            let executed = flow3d_par::par_map(workers, work.len(), |i| self.execute(&work[i]));
            self.emit(
                LogLevel::Debug,
                "wave_end",
                vec![
                    ("wave".into(), Json::num(wave_index as f64)),
                    ("size".into(), Json::num(work.len() as f64)),
                ],
            );
            wave_index += 1;
            let mut stats = lock(&self.shared.stats);
            for (done, respond) in executed.into_iter().zip(senders) {
                if let Some(profile) = &done.profile {
                    stats.profile.merge_nested(profile);
                }
                let _ = respond.send(done.response);
            }
        }
        self.emit(
            LogLevel::Info,
            "server_stopped",
            vec![("waves".into(), Json::num(wave_index as f64))],
        );
        self.flight_dump("shutdown");
        let mut done = lock(&self.shared.done);
        *done = true;
        self.shared.done_cv.notify_all();
    }

    /// Builds the next wave: the longest queue prefix holding at most
    /// one request per case. A second request for a case already in the
    /// wave — and everything FIFO-behind it for that case — stays
    /// queued, preserving per-case order. A shutdown job only forms a
    /// wave once it is alone at the front, i.e. once every request
    /// admitted before it has completed.
    fn next_wave(&self) -> Vec<Job> {
        let mut queue = lock(&self.shared.queue);
        loop {
            if !queue.jobs.is_empty() {
                let mut wave: Vec<Job> = Vec::new();
                let mut skipped: Vec<Job> = Vec::new();
                while let Some(job) = queue.jobs.pop_front() {
                    if matches!(job.request, Request::Shutdown) {
                        if wave.is_empty() && skipped.is_empty() {
                            wave.push(job);
                        } else {
                            skipped.push(job);
                        }
                        break;
                    }
                    let name = job.request.case_name().unwrap_or("");
                    if wave
                        .iter()
                        .any(|w| w.request.case_name().unwrap_or("") == name)
                    {
                        skipped.push(job);
                    } else {
                        wave.push(job);
                    }
                }
                for job in skipped.into_iter().rev() {
                    queue.jobs.push_front(job);
                }
                if !wave.is_empty() {
                    return wave;
                }
            }
            queue = self
                .shared
                .queue_cv
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn execute(&self, work: &Work) -> Executed {
        match &work.request {
            Request::Load {
                name,
                case,
                legal,
                global,
                threads,
            } => self.execute_load(work.id, name, case, legal.as_deref(), global.as_deref(), {
                if *threads == 0 {
                    self.shared.config.default_threads
                } else {
                    *threads
                }
            }),
            Request::Legalize {
                name,
                global,
                commit,
            } => self.execute_legalize(work.id, name, global, *commit),
            Request::Eco {
                name,
                moves,
                commit,
                trace,
            } => self.execute_eco(work.id, name, moves, *commit, *trace),
            // Inline and shutdown requests never reach the wave.
            other => Executed {
                response: error_response(
                    work.id,
                    codes::BAD_REQUEST,
                    &format!("request {other:?} cannot be queued"),
                ),
                profile: None,
            },
        }
    }

    fn execute_load(
        &self,
        id: u64,
        name: &str,
        case: &str,
        legal: Option<&str>,
        global: Option<&str>,
        threads: usize,
    ) -> Executed {
        let fail = |code: &str, msg: &str| Executed {
            response: error_response(id, code, msg),
            profile: None,
        };
        let design = match flow3d_io::parse_case(case) {
            Ok(d) => d,
            Err(e) => return fail(codes::PARSE_FAILED, &format!("case: {e}")),
        };
        let cfg = Flow3dConfig {
            threads,
            ..Flow3dConfig::default()
        };
        let mut profile = Profile::new();
        if self.shared.config.trace_dir.is_some() {
            profile.enable_tracing();
        }
        profile.begin("load");
        let base = if let Some(text) = legal {
            match flow3d_io::parse_legal(&design, text) {
                Ok(p) => p,
                Err(e) => return fail(codes::PARSE_FAILED, &format!("legal: {e}")),
            }
        } else {
            let text = global.unwrap_or_default();
            let gp = match flow3d_io::parse_placement3d(&design, text) {
                Ok(p) => p,
                Err(e) => return fail(codes::PARSE_FAILED, &format!("global: {e}")),
            };
            let legalizer = Flow3dLegalizer::new(cfg.clone());
            match legalizer.legalize_observed(&design, &gp, Some(&mut profile)) {
                Ok(outcome) => outcome.placement,
                Err(e) => return fail(codes::LEGALIZE_FAILED, &e.to_string()),
            }
        };
        let cells = design.num_cells();
        let engine = match EcoEngine::new(cfg, design, base) {
            Ok(e) => e,
            Err(e) => return fail(codes::LEGALIZE_FAILED, &e.to_string()),
        };
        profile.end("load");
        let slot = Arc::new(Mutex::new(CaseSlot {
            engine,
            ecos: 0,
            legalizes: 0,
        }));
        lock(&self.shared.registry).insert(name.to_string(), slot);
        self.emit(
            LogLevel::Info,
            "engine_loaded",
            vec![
                ("id".into(), Json::num(id as f64)),
                ("case".into(), Json::Str(name.to_string())),
                ("cells".into(), Json::num(cells as f64)),
                ("threads".into(), Json::num(threads as f64)),
            ],
        );
        self.export_trace(name, id, &profile);
        Executed {
            response: ok_response(
                id,
                vec![
                    ("name".into(), Json::Str(name.to_string())),
                    ("cells".into(), Json::num(cells as f64)),
                    ("threads".into(), Json::num(threads as f64)),
                ],
            ),
            profile: Some(profile),
        }
    }

    /// Writes a request's Chrome trace into the configured trace
    /// directory as `<case>_r<id>.trace.json`, process tagged
    /// `case#r<id>`. A no-op unless `--trace` armed the directory.
    fn export_trace(&self, name: &str, id: u64, profile: &Profile) {
        let Some(dir) = &self.shared.config.trace_dir else {
            return;
        };
        let Some(trace_json) = profile.to_chrome_trace(&format!("flow3d-serve {name}#r{id}"))
        else {
            return;
        };
        let file: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = std::path::Path::new(dir).join(format!("{file}_r{id}.trace.json"));
        if std::fs::write(&path, trace_json).is_err() {
            self.emit(
                LogLevel::Warn,
                "trace_export_failed",
                vec![(
                    "path".into(),
                    Json::Str(path.to_string_lossy().into_owned()),
                )],
            );
        }
    }

    /// Retains a per-request report in the flight recorder (no-op
    /// without a dump path).
    fn note_report(&self, tag: &str, report: &Json) {
        if self.shared.config.flight_path.is_some() {
            lock(&self.shared.telemetry)
                .recorder
                .note_report(tag, report.clone());
        }
    }

    fn case_slot(&self, name: &str) -> Option<Arc<Mutex<CaseSlot>>> {
        lock(&self.shared.registry).get(name).cloned()
    }

    fn execute_legalize(&self, id: u64, name: &str, global: &str, commit: bool) -> Executed {
        let fail = |code: &str, msg: &str| Executed {
            response: error_response(id, code, msg),
            profile: None,
        };
        let Some(slot) = self.case_slot(name) else {
            return fail(codes::UNKNOWN_CASE, &format!("no resident case `{name}`"));
        };
        let mut slot = lock(&slot);
        let gp = match flow3d_io::parse_placement3d(slot.engine.design(), global) {
            Ok(p) => p,
            Err(e) => return fail(codes::PARSE_FAILED, &format!("global: {e}")),
        };
        let mut profile = Profile::new();
        if self.shared.config.trace_dir.is_some() {
            profile.enable_tracing();
        }
        profile.begin("legalize");
        let legalizer = Flow3dLegalizer::new(slot.engine.config().clone());
        let outcome =
            match legalizer.legalize_observed(slot.engine.design(), &gp, Some(&mut profile)) {
                Ok(o) => o,
                Err(e) => return fail(codes::LEGALIZE_FAILED, &e.to_string()),
            };
        profile.end("legalize");
        slot.legalizes += 1;
        let legal_text = match placement_text(&slot.engine, &outcome.placement) {
            Ok(t) => t,
            Err(e) => return fail(codes::LEGALIZE_FAILED, &e),
        };
        let commit_stats = if commit {
            profile.begin("commit");
            let cs = match slot.engine.commit(outcome.placement.clone()) {
                Ok(cs) => cs,
                Err(e) => return fail(codes::LEGALIZE_FAILED, &e.to_string()),
            };
            profile.end("commit");
            profile.bump(keys::COMMIT_RESEEDED, cs.reseeded as u64);
            profile.bump(keys::COMMIT_SEEDS, cs.total as u64);
            Some(cs)
        } else {
            None
        };
        let tag = format!("{name}#r{id}");
        let report = RunReport::from_profile(&tag, "flow3d-serve", &profile);
        let mut fields = vec![
            ("name".into(), Json::Str(name.to_string())),
            ("legal".into(), Json::Str(legal_text)),
            ("committed".into(), Json::Bool(commit)),
            ("stats".into(), stats_json(&outcome.stats)),
        ];
        if let Some(cs) = commit_stats {
            fields.push(("commit_reseeded".into(), Json::num(cs.reseeded as f64)));
            fields.push(("commit_total".into(), Json::num(cs.total as f64)));
        }
        if let Ok(json) = Json::parse(&report.to_json()) {
            self.note_report(&tag, &json);
            fields.push(("report".into(), json));
        }
        self.export_trace(name, id, &profile);
        Executed {
            response: ok_response(id, fields),
            profile: Some(profile),
        }
    }

    fn execute_eco(
        &self,
        id: u64,
        name: &str,
        moves: &[MoveSpec],
        commit: bool,
        trace: bool,
    ) -> Executed {
        let fail = |code: &str, msg: &str| Executed {
            response: error_response(id, code, msg),
            profile: None,
        };
        let Some(slot) = self.case_slot(name) else {
            return fail(codes::UNKNOWN_CASE, &format!("no resident case `{name}`"));
        };
        let mut slot = lock(&slot);
        let cell_moves = match resolve_moves(&slot.engine, moves) {
            Ok(m) => m,
            Err(msg) => return fail(codes::BAD_REQUEST, &msg),
        };
        let mut profile = Profile::new();
        if trace || self.shared.config.trace_dir.is_some() {
            profile.enable_tracing();
        }
        profile.begin("eco");
        let outcome = match slot.engine.eco_observed(&cell_moves, Some(&mut profile)) {
            Ok(o) => o,
            Err(e) => return fail(codes::LEGALIZE_FAILED, &e.to_string()),
        };
        profile.end("eco");
        slot.ecos += 1;
        let legal_text = match placement_text(&slot.engine, &outcome.placement) {
            Ok(t) => t,
            Err(e) => return fail(codes::LEGALIZE_FAILED, &e),
        };
        let commit_stats = if commit {
            profile.begin("commit");
            let cs = match slot.engine.commit(outcome.placement.clone()) {
                Ok(cs) => cs,
                Err(e) => return fail(codes::LEGALIZE_FAILED, &e.to_string()),
            };
            profile.end("commit");
            profile.bump(keys::COMMIT_RESEEDED, cs.reseeded as u64);
            profile.bump(keys::COMMIT_SEEDS, cs.total as u64);
            Some(cs)
        } else {
            None
        };
        let tag = format!("{name}#r{id}");
        let report = RunReport::from_profile(&tag, "flow3d-serve", &profile);
        let mut fields = vec![
            ("name".into(), Json::Str(name.to_string())),
            ("legal".into(), Json::Str(legal_text)),
            ("committed".into(), Json::Bool(commit)),
            ("stats".into(), stats_json(&outcome.stats)),
            (
                "requests_served".into(),
                Json::num(slot.engine.requests_served() as f64),
            ),
        ];
        if let Some(cs) = commit_stats {
            fields.push(("commit_reseeded".into(), Json::num(cs.reseeded as f64)));
            fields.push(("commit_total".into(), Json::num(cs.total as f64)));
        }
        if let Ok(json) = Json::parse(&report.to_json()) {
            self.note_report(&tag, &json);
            fields.push(("report".into(), json));
        }
        if trace {
            if let Some(trace_json) = profile.to_chrome_trace(&format!("flow3d-serve {tag}")) {
                fields.push(("trace".into(), Json::Str(trace_json)));
            }
        }
        self.export_trace(name, id, &profile);
        Executed {
            response: ok_response(id, fields),
            profile: Some(profile),
        }
    }

    fn stats_response(&self, id: u64) -> Json {
        let cases: Vec<Json> = lock(&self.shared.registry)
            .iter()
            .map(|(name, slot)| {
                let slot = lock(slot);
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.clone())),
                    (
                        "cells".into(),
                        Json::num(slot.engine.design().num_cells() as f64),
                    ),
                    ("ecos".into(), Json::num(slot.ecos as f64)),
                    ("legalizes".into(), Json::num(slot.legalizes as f64)),
                    (
                        "requests_served".into(),
                        Json::num(slot.engine.requests_served() as f64),
                    ),
                ])
            })
            .collect();
        let pending = lock(&self.shared.queue).jobs.len();
        let stats = lock(&self.shared.stats);
        let report = RunReport::from_profile("flow3d-serve", "flow3d-serve", &stats.profile);
        let mut fields = vec![
            ("cases".into(), Json::Arr(cases)),
            ("requests".into(), Json::num(stats.requests as f64)),
            ("errors".into(), Json::num(stats.errors as f64)),
            ("pending".into(), Json::num(pending as f64)),
            (
                "uptime_secs".into(),
                Json::num(self.shared.started.elapsed().as_secs_f64()),
            ),
            (
                "peak_rss_bytes".into(),
                match peak_rss_bytes() {
                    Some(bytes) => Json::num(bytes as f64),
                    None => Json::Null,
                },
            ),
            // `null` = memo disabled (no memo counters ever touched);
            // `0.0` = memo on, every lookup missed so far.
            (
                "selection_memo_hit_rate".into(),
                report
                    .selection_memo_hit_rate()
                    .map_or(Json::Null, Json::num),
            ),
        ];
        if let Ok(json) = Json::parse(&report.to_json()) {
            fields.push(("report".into(), json));
        }
        ok_response(id, fields)
    }
}

/// Resolves wire move specs against the resident design. Any unknown
/// cell or out-of-range die fails the whole request — a partial ECO
/// would silently diverge from what the client asked for.
fn resolve_moves(engine: &EcoEngine, moves: &[MoveSpec]) -> Result<Vec<CellMove>, String> {
    let design = engine.design();
    moves
        .iter()
        .map(|m| {
            let cell = design
                .cell_by_name(&m.cell)
                .ok_or_else(|| format!("unknown cell `{}`", m.cell))?;
            let die = match m.die {
                None => None,
                Some(d) if d < design.num_dies() => Some(DieId::new(d)),
                Some(d) => {
                    return Err(format!(
                        "die {d} out of range for `{}` (design has {})",
                        m.cell,
                        design.num_dies()
                    ))
                }
            };
            Ok(CellMove {
                cell,
                target: Point::new(m.x, m.y),
                die,
            })
        })
        .collect()
}

fn placement_text(
    engine: &EcoEngine,
    placement: &flow3d_db::LegalPlacement,
) -> Result<String, String> {
    let mut buf = String::new();
    flow3d_io::write_legal(engine.design(), placement, &mut buf)
        .map_err(|e| format!("serializing placement: {e}"))?;
    Ok(buf)
}

fn stats_json(stats: &LegalizeStats) -> Json {
    Json::Obj(vec![
        (
            "augmentations".into(),
            Json::num(stats.augmentations as f64),
        ),
        (
            "nodes_expanded".into(),
            Json::num(stats.nodes_expanded as f64),
        ),
        (
            "cross_die_moves".into(),
            Json::num(stats.cross_die_moves as f64),
        ),
        ("post_passes".into(), Json::num(stats.post_passes as f64)),
        (
            "fallback_moves".into(),
            Json::num(stats.fallback_moves as f64),
        ),
        ("cells_moved".into(), Json::num(stats.cells_moved as f64)),
    ])
}

/// Locks a mutex, riding through poisoning: a panic in another request
/// must not wedge the whole server, and every guarded structure is
/// valid at rest (counters, maps, queues).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}
