//! Wire protocol: length-prefixed JSON frames and the request/response
//! schema.
//!
//! The full specification (framing, schemas, error codes, examples)
//! lives in `SERVING.md` at the repository root; this module is its
//! executable form. In short:
//!
//! * A **frame** is a 4-byte big-endian payload length followed by that
//!   many bytes of UTF-8 JSON. Frames above [`MAX_FRAME`] are rejected.
//! * A **request** is an object with a `"cmd"` string, an optional
//!   numeric `"id"` (echoed back; assigned by the server when absent),
//!   and command-specific fields — see [`Request`].
//! * A **response** is `{"id", "ok": true, "result": {…}}` or `{"id",
//!   "ok": false, "error": {"code", "message"}}` with `code` from
//!   [`codes`].
//!
//! Everything is built on [`flow3d_obs::Json`] — std only, no external
//! dependencies.

use flow3d_obs::{Json, JsonError};
use std::io::{Read, Write};

/// Maximum accepted frame payload, in bytes (64 MiB). Large enough for
/// a full case file, small enough to bound a malicious length prefix.
// flow3d-tidy: allow(dead-pub) — wire-protocol API (flow3d::serve) for out-of-tree clients
pub const MAX_FRAME: usize = 64 << 20;

/// Error codes carried by `{"error": {"code": …}}` responses.
pub mod codes {
    /// The frame was syntactically unreadable (bad length, bad UTF-8,
    /// bad JSON). The server answers once with this code, then closes
    /// the connection — framing is unrecoverable after garbage.
    pub const MALFORMED_FRAME: &str = "malformed_frame";
    /// The frame was valid JSON but not a valid request (unknown `cmd`,
    /// missing or mistyped field, unknown cell name in a move list).
    pub const BAD_REQUEST: &str = "bad_request";
    /// The named case is not resident (never loaded, or unloaded).
    pub const UNKNOWN_CASE: &str = "unknown_case";
    /// The bounded request queue is full; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining after a `shutdown` request and admits no
    /// new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// A case, placement, or move file failed to parse.
    pub const PARSE_FAILED: &str = "parse_failed";
    /// The legalizer itself failed (infeasible overflow, corrupt base —
    /// the message carries the `LegalizeError`).
    pub const LEGALIZE_FAILED: &str = "legalize_failed";
}

/// A framing-layer error: the byte stream could not produce a JSON
/// value.
#[derive(Debug)]
// flow3d-tidy: allow(dead-pub) — wire-protocol API (flow3d::serve) for out-of-tree clients
pub enum FrameError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload is not UTF-8.
    BadUtf8,
    /// The payload is not JSON.
    BadJson(JsonError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            FrameError::BadUtf8 => write!(f, "frame payload is not UTF-8"),
            FrameError::BadJson(e) => write!(f, "frame payload is not JSON: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes `json` as one length-prefixed frame and flushes.
///
/// # Errors
///
/// Any error of the underlying writer.
pub fn write_frame(w: &mut impl Write, json: &Json) -> std::io::Result<()> {
    let payload = json.to_string();
    let bytes = payload.as_bytes();
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); anything else that prevents producing a JSON value
/// is a [`FrameError`].
///
/// # Errors
///
/// [`FrameError`] on transport errors, truncated frames, oversized
/// lengths, or non-UTF-8 / non-JSON payloads.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    // Read the first prefix byte separately so a clean close between
    // frames is EOF, not an error; a close *inside* a frame is an error.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            return read_frame(r);
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let text = std::str::from_utf8(&buf).map_err(|_| FrameError::BadUtf8)?;
    Json::parse(text).map(Some).map_err(FrameError::BadJson)
}

/// Builds a success response: `{"id", "ok": true, "result": {fields}}`.
// flow3d-tidy: allow(dead-pub) — wire-protocol API (flow3d::serve) for out-of-tree clients
pub fn ok_response(id: u64, fields: Vec<(String, Json)>) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::num(id as f64)),
        ("ok".into(), Json::Bool(true)),
        ("result".into(), Json::Obj(fields)),
    ])
}

/// Builds an error response:
/// `{"id", "ok": false, "error": {"code", "message"}}`.
// flow3d-tidy: allow(dead-pub) — wire-protocol API (flow3d::serve) for out-of-tree clients
pub fn error_response(id: u64, code: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::num(id as f64)),
        ("ok".into(), Json::Bool(false)),
        (
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::Str(code.into())),
                ("message".into(), Json::Str(message.into())),
            ]),
        ),
    ])
}

/// The client-assigned request id, if present and numeric.
// flow3d-tidy: allow(dead-pub) — wire-protocol API (flow3d::serve) for out-of-tree clients
pub fn request_id(json: &Json) -> Option<u64> {
    json.get("id").and_then(Json::as_u64)
}

/// One requested cell change inside an `eco` request, by cell name.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveSpec {
    /// Instance name (resolved against the resident design).
    pub cell: String,
    /// Requested lower-left x.
    pub x: i64,
    /// Requested lower-left y.
    pub y: i64,
    /// Requested die index, or `None` to keep the current die.
    pub die: Option<usize>,
}

/// A parsed request. The JSON schema of each variant is specified in
/// `SERVING.md`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered inline, never queued.
    Ping,
    /// Parse a case, establish its base placement, and make it resident
    /// under `name` (replacing any previous case of that name).
    Load {
        /// Registry key for subsequent requests.
        name: String,
        /// Case file text (`flow3d_io::parse_case`).
        case: String,
        /// Base legal placement text (`flow3d_io::parse_legal`).
        /// Exactly one of `legal` and `global` must be given.
        legal: Option<String>,
        /// Global placement text (`flow3d_io::parse_placement3d`); the
        /// server legalizes it to produce the base.
        global: Option<String>,
        /// Worker threads for this case's engine (0 = the server
        /// default). More threads shard a case's die regions across the
        /// pool; memo-hit telemetry is deterministic only at 1.
        threads: usize,
    },
    /// Full legalization of a provided global placement against the
    /// resident design.
    Legalize {
        /// Resident case name.
        name: String,
        /// Global placement text.
        global: String,
        /// Adopt the result as the case's new ECO base.
        commit: bool,
    },
    /// Incremental re-legalization of the resident base — the hot path.
    Eco {
        /// Resident case name.
        name: String,
        /// The move set (empty = no-op request, returns the base).
        moves: Vec<MoveSpec>,
        /// Adopt the result as the case's new ECO base.
        commit: bool,
        /// Include a request-id-tagged Chrome trace in the response.
        trace: bool,
    },
    /// Server statistics: resident cases, request counts, the merged
    /// serve-mode telemetry report (latency histograms included).
    /// Answered inline, never queued.
    Stats,
    /// Rolling-window gauges: windowed p50/p90/p99 latency, throughput,
    /// queue depth, and error rate, in both JSON and a Prometheus-style
    /// text rendering. Answered inline, never queued.
    Metrics,
    /// Drops a resident case. Answered inline; queued requests already
    /// admitted for the case still complete.
    Unload {
        /// Resident case name.
        name: String,
    },
    /// Graceful drain: every previously admitted request completes and
    /// is answered, then this request is answered and the server stops.
    Shutdown,
}

impl Request {
    /// Parses a request object. The error string is a human-readable
    /// reason suitable for a [`codes::BAD_REQUEST`] response.
    ///
    /// # Errors
    ///
    /// A description of the first schema violation found.
    pub fn parse(json: &Json) -> Result<Request, String> {
        let cmd = json
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing string field `cmd`")?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "unload" => Ok(Request::Unload {
                name: required_str(json, "name")?,
            }),
            "load" => {
                let legal = optional_str(json, "legal");
                let global = optional_str(json, "global");
                if legal.is_some() == global.is_some() {
                    return Err("`load` needs exactly one of `legal` and `global`".into());
                }
                Ok(Request::Load {
                    name: required_str(json, "name")?,
                    case: required_str(json, "case")?,
                    legal,
                    global,
                    threads: json.get("threads").and_then(Json::as_u64).unwrap_or(0) as usize,
                })
            }
            "legalize" => Ok(Request::Legalize {
                name: required_str(json, "name")?,
                global: required_str(json, "global")?,
                commit: bool_field(json, "commit"),
            }),
            "eco" => {
                let moves = match json.get("moves") {
                    None => Vec::new(),
                    Some(arr) => {
                        let items = arr.as_array().ok_or("`moves` must be an array")?;
                        items.iter().map(parse_move).collect::<Result<_, _>>()?
                    }
                };
                Ok(Request::Eco {
                    name: required_str(json, "name")?,
                    moves,
                    commit: bool_field(json, "commit"),
                    trace: bool_field(json, "trace"),
                })
            }
            other => Err(format!("unknown cmd `{other}`")),
        }
    }

    /// Whether the request goes through the bounded FIFO queue (heavy,
    /// state-mutating work) or is answered inline by the connection
    /// thread.
    pub fn is_queued(&self) -> bool {
        matches!(
            self,
            Request::Load { .. }
                | Request::Legalize { .. }
                | Request::Eco { .. }
                | Request::Shutdown
        )
    }

    /// The shard key: the dispatcher never runs two queued requests for
    /// the same case in one wave, so per-case engine access is
    /// serialized while distinct cases fan out across the pool.
    pub fn case_name(&self) -> Option<&str> {
        match self {
            Request::Load { name, .. }
            | Request::Legalize { name, .. }
            | Request::Eco { name, .. }
            | Request::Unload { name } => Some(name),
            Request::Ping | Request::Stats | Request::Metrics | Request::Shutdown => None,
        }
    }

    /// The wire `cmd` name of this request, for structured log events.
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Load { .. } => "load",
            Request::Legalize { .. } => "legalize",
            Request::Eco { .. } => "eco",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Unload { .. } => "unload",
            Request::Shutdown => "shutdown",
        }
    }
}

fn required_str(json: &Json, key: &str) -> Result<String, String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn optional_str(json: &Json, key: &str) -> Option<String> {
    json.get(key).and_then(Json::as_str).map(str::to_string)
}

fn bool_field(json: &Json, key: &str) -> bool {
    matches!(json.get(key), Some(Json::Bool(true)))
}

fn parse_move(item: &Json) -> Result<MoveSpec, String> {
    let cell = item
        .get("cell")
        .and_then(Json::as_str)
        .ok_or("move missing string field `cell`")?
        .to_string();
    let coord = |key: &str| -> Result<i64, String> {
        item.get(key)
            .and_then(Json::as_f64)
            .map(|v| v as i64)
            .ok_or_else(|| format!("move `{cell}` missing numeric field `{key}`"))
    };
    Ok(MoveSpec {
        x: coord("x")?,
        y: coord("y")?,
        die: item.get("die").and_then(Json::as_u64).map(|d| d as usize),
        cell,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Json)]) -> Json {
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        let msg = obj(&[("cmd", Json::Str("ping".into()))]);
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &Json::num(7.0)).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(msg));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Json::num(7.0)));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_error() {
        // Truncated payload: length says 10, only 3 bytes follow.
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
        // Oversized length prefix.
        let buf = (MAX_FRAME as u32 + 1).to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::TooLarge(_))
        ));
        // Valid frame, invalid JSON.
        let mut buf = 3u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"{x}");
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::BadJson(_))
        ));
    }

    #[test]
    fn requests_parse_and_classify() {
        let ping = obj(&[("cmd", Json::Str("ping".into()))]);
        assert_eq!(Request::parse(&ping).unwrap(), Request::Ping);
        assert!(!Request::Ping.is_queued());

        let metrics = obj(&[("cmd", Json::Str("metrics".into()))]);
        let parsed = Request::parse(&metrics).unwrap();
        assert_eq!(parsed, Request::Metrics);
        assert!(!parsed.is_queued());
        assert_eq!(parsed.case_name(), None);
        assert_eq!(parsed.cmd(), "metrics");

        let eco = obj(&[
            ("cmd", Json::Str("eco".into())),
            ("name", Json::Str("a".into())),
            (
                "moves",
                Json::Arr(vec![obj(&[
                    ("cell", Json::Str("u0".into())),
                    ("x", Json::num(35.0)),
                    ("y", Json::num(10.0)),
                    ("die", Json::num(1.0)),
                ])]),
            ),
            ("commit", Json::Bool(true)),
        ]);
        let parsed = Request::parse(&eco).unwrap();
        assert!(parsed.is_queued());
        assert_eq!(parsed.case_name(), Some("a"));
        match parsed {
            Request::Eco {
                moves,
                commit,
                trace,
                ..
            } => {
                assert!(commit && !trace);
                assert_eq!(
                    moves,
                    vec![MoveSpec {
                        cell: "u0".into(),
                        x: 35,
                        y: 10,
                        die: Some(1),
                    }]
                );
            }
            other => panic!("wrong variant {other:?}"),
        }

        // load must carry exactly one base source.
        let bad = obj(&[
            ("cmd", Json::Str("load".into())),
            ("name", Json::Str("a".into())),
            ("case", Json::Str("...".into())),
        ]);
        assert!(Request::parse(&bad).is_err());
        let bad = obj(&[("cmd", Json::Str("warp".into()))]);
        assert!(Request::parse(&bad).unwrap_err().contains("unknown cmd"));
    }

    #[test]
    fn responses_have_the_documented_shape() {
        let ok = ok_response(3, vec![("pong".into(), Json::Bool(true))]);
        assert_eq!(request_id(&ok), Some(3));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            ok.get("result").and_then(|r| r.get("pong")),
            Some(&Json::Bool(true))
        );
        let err = error_response(4, codes::UNKNOWN_CASE, "no such case");
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            err.get("error").and_then(|e| e.get("code")),
            Some(&Json::Str(codes::UNKNOWN_CASE.into()))
        );
    }
}
