//! Client/server integration tests: the full frame protocol over real
//! sockets, checked for bit-identity against the one-shot incremental
//! API, warm-memo reuse across replayed ECO batches, malformed-frame
//! rejection, sharded concurrent connections, and graceful drain.

use flow3d_core::{CellMove, Flow3dConfig, Flow3dLegalizer, Legalizer};
use flow3d_db::{
    CellId, Design, DesignBuilder, DieId, DieSpec, LegalPlacement, LibCellSpec, Placement3d,
    TechnologySpec,
};
use flow3d_geom::{FPoint, Point};
use flow3d_obs::RunReport;
use flow3d_serve::{Client, Json, Server, ServerConfig};

// ---------------------------------------------------------------- fixtures

fn design(n: usize) -> Design {
    let mut b = DesignBuilder::new("serve-demo")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
    for i in 0..n {
        b = b.cell(format!("u{i}"), "C");
    }
    b.build().unwrap()
}

fn base_placement(d: &Design) -> LegalPlacement {
    let n = d.num_cells();
    let mut gp = Placement3d::new(n);
    for i in 0..n {
        gp.set_pos(
            CellId::new(i),
            FPoint::new((i as f64 * 35.0) % 350.0, 10.0 * ((i / 10) as f64)),
        );
    }
    Flow3dLegalizer::default()
        .legalize(d, &gp)
        .unwrap()
        .placement
}

/// One requested move, in a form convertible both to the wire JSON and
/// to the one-shot API's [`CellMove`].
type Spec = (usize, i64, i64, Option<usize>);

/// Piles `from` onto `onto`'s position — enough clashing cells overflow
/// a bin and force flow searches, which is what makes memo telemetry
/// observable (a lone clash is absorbed by PlaceRow without a search).
fn pileup(base: &LegalPlacement, from: &[usize], onto: usize) -> Vec<Spec> {
    let p = base.pos(CellId::new(onto));
    let die = base.die(CellId::new(onto)).index();
    from.iter().map(|&i| (i, p.x, p.y, Some(die))).collect()
}

fn cell_moves(spec: &[Spec]) -> Vec<CellMove> {
    spec.iter()
        .map(|&(i, x, y, die)| CellMove {
            cell: CellId::new(i),
            target: Point::new(x, y),
            die: die.map(DieId::new),
        })
        .collect()
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn moves_json(spec: &[Spec]) -> Json {
    Json::Arr(
        spec.iter()
            .map(|&(i, x, y, die)| {
                let mut pairs = vec![
                    ("cell", Json::Str(format!("u{i}"))),
                    ("x", Json::num(x as f64)),
                    ("y", Json::num(y as f64)),
                ];
                if let Some(d) = die {
                    pairs.push(("die", Json::num(d as f64)));
                }
                obj(pairs)
            })
            .collect(),
    )
}

fn case_text(d: &Design) -> String {
    let mut s = String::new();
    flow3d_io::write_case(d, &mut s).unwrap();
    s
}

fn legal_text(d: &Design, p: &LegalPlacement) -> String {
    let mut s = String::new();
    flow3d_io::write_legal(d, p, &mut s).unwrap();
    s
}

fn load_request(name: &str, d: &Design, base: &LegalPlacement) -> Json {
    obj(vec![
        ("cmd", Json::Str("load".into())),
        ("name", Json::Str(name.into())),
        ("case", Json::Str(case_text(d))),
        ("legal", Json::Str(legal_text(d, base))),
    ])
}

fn eco_request(name: &str, spec: &[Spec]) -> Json {
    obj(vec![
        ("cmd", Json::Str("eco".into())),
        ("name", Json::Str(name.into())),
        ("moves", moves_json(spec)),
    ])
}

fn assert_ok(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "request failed: {resp}"
    );
    resp.get("result").expect("ok responses carry a result")
}

fn result_str<'a>(result: &'a Json, key: &str) -> &'a str {
    result
        .get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}` in {result}"))
}

fn report_counter(result: &Json, counter: &str) -> u64 {
    let report = result.get("report").expect("response carries a report");
    let report = RunReport::from_json(&report.to_string()).expect("report round-trips");
    report
        .counters
        .iter()
        .find(|(name, _)| name == counter)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

fn one_shot(d: &Design, base: &LegalPlacement, spec: &[Spec]) -> String {
    // The server's default engine runs one thread; match it exactly.
    let legalizer = Flow3dLegalizer::new(Flow3dConfig {
        threads: 1,
        ..Flow3dConfig::default()
    });
    let outcome = legalizer
        .legalize_incremental(d, base, &cell_moves(spec))
        .unwrap();
    legal_text(d, &outcome.placement)
}

fn shutdown_and_join(client: &mut Client<impl std::io::Read + std::io::Write>, server: &Server) {
    let resp = client
        .request(&obj(vec![("cmd", Json::Str("shutdown".into()))]))
        .unwrap();
    assert_ok(&resp);
    server.join();
    assert!(server.is_done());
}

// ------------------------------------------------------------------- tests

#[cfg(unix)]
fn socketpair_client(server: &Server) -> Client<std::os::unix::net::UnixStream> {
    let (ours, theirs) = std::os::unix::net::UnixStream::pair().unwrap();
    let handler = server.clone();
    std::thread::spawn(move || handler.handle_connection(theirs));
    Client::new(ours)
}

/// The acceptance batch: 8 ECO requests (4 distinct move sets, each
/// fired twice in a row) against one resident case. Every response must
/// be bit-identical to the one-shot incremental API, every replay must
/// be answered memo-warm, and the server stats must expose the request
/// latency histogram.
#[cfg(unix)]
#[test]
fn eco_batch_is_bit_identical_and_memo_warm() {
    let d = design(12);
    let base = base_placement(&d);
    let server = Server::new(ServerConfig::default()).unwrap();
    let mut client = socketpair_client(&server);

    let resp = client.request(&load_request("demo", &d, &base)).unwrap();
    let result = assert_ok(&resp);
    assert_eq!(result.get("cells"), Some(&Json::num(12.0)));

    let sets: Vec<Vec<Spec>> = vec![
        pileup(&base, &[0, 1, 2, 3, 4], 5),
        pileup(&base, &[6, 7, 8, 9, 10], 11),
        pileup(&base, &[1, 3, 5, 7, 9, 11], 0),
        {
            let mut s = pileup(&base, &[2, 4, 6, 8, 10], 1);
            // One cross-die request on top of the pile.
            let p = base.pos(CellId::new(0));
            s.push((0, p.x, p.y, Some(1 - base.die(CellId::new(0)).index())));
            s
        },
    ];
    let mut requests = 0u64;
    for spec in &sets {
        let expected = one_shot(&d, &base, spec);
        for round in 0..2 {
            let resp = client.request(&eco_request("demo", spec)).unwrap();
            let result = assert_ok(&resp);
            requests += 1;
            assert_eq!(
                result_str(result, "legal"),
                expected,
                "serve-mode result diverged from the one-shot API (round {round})"
            );
            assert_eq!(
                result.get("requests_served"),
                Some(&Json::num(requests as f64))
            );
            let hits = report_counter(result, "selection_memo_hits");
            if round == 1 {
                assert!(
                    hits > 0,
                    "replayed request must be answered memo-warm, got {hits} hits"
                );
            }
        }
    }

    // Warm-cache generality: return to the *first* move set after three
    // disjoint sets (and their replays) ran in between. The
    // content-addressed memo keeps its entries across disjoint requests,
    // so this must be answered warm — the generation-stamped memo it
    // replaced went cold here.
    {
        let expected = one_shot(&d, &base, &sets[0]);
        let resp = client.request(&eco_request("demo", &sets[0])).unwrap();
        let result = assert_ok(&resp);
        assert_eq!(result_str(result, "legal"), expected);
        let hits = report_counter(result, "selection_memo_hits");
        assert!(
            hits > 0,
            "returning to a disjoint earlier set must be memo-warm, got {hits} hits"
        );
    }

    // Commit the last outcome: the response reports the seed-cache
    // delta, which for a small ECO refreshes only a fraction of seeds.
    {
        let mut req = eco_request("demo", &sets[0]);
        if let Json::Obj(pairs) = &mut req {
            pairs.push(("commit".into(), Json::Bool(true)));
        }
        let resp = client.request(&req).unwrap();
        let result = assert_ok(&resp);
        assert_eq!(result.get("committed"), Some(&Json::Bool(true)));
        let reseeded = result
            .get("commit_reseeded")
            .and_then(Json::as_u64)
            .expect("committed responses report the seed delta");
        let total = result
            .get("commit_total")
            .and_then(Json::as_u64)
            .expect("committed responses report the seed total");
        assert_eq!(total, 12);
        assert!(
            reseeded > 0 && reseeded < total,
            "a small ECO commit must reseed some but not all cells \
             ({reseeded}/{total})"
        );
        assert!(
            report_counter(result, "commit_reseeded") == reseeded
                && report_counter(result, "commit_seeds") == total,
            "the request report must carry the commit counters"
        );
    }

    let resp = client
        .request(&obj(vec![("cmd", Json::Str("stats".into()))]))
        .unwrap();
    let result = assert_ok(&resp);
    // load + 10 ecos so far; the stats request itself is not yet counted
    // at snapshot time but may be — accept either.
    let counted = result.get("requests").and_then(Json::as_u64).unwrap();
    assert!(counted >= 11, "stats undercounts: {counted}");
    // The top-level hit-rate gauge distinguishes enabled-and-warm
    // (a number > 0 here) from disabled (JSON null).
    let rate = result
        .get("selection_memo_hit_rate")
        .and_then(Json::as_f64)
        .expect("stats expose the memo hit rate when the memo is enabled");
    assert!(
        rate > 0.0 && rate <= 1.0,
        "after warm replays the lifetime hit rate is positive: {rate}"
    );
    let report = result.get("report").expect("stats carry a server report");
    let report = RunReport::from_json(&report.to_string()).unwrap();
    let latency = report
        .hists
        .iter()
        .find(|h| h.name == "serve_request_micros")
        .expect("stats expose the request latency histogram");
    assert!(latency.count >= 9);
    assert!(latency.max >= latency.min && latency.min > 0.0);

    shutdown_and_join(&mut client, &server);
}

/// A malformed frame is answered once with `malformed_frame`, then the
/// connection closes; the server itself keeps serving other clients.
#[cfg(unix)]
#[test]
fn malformed_frame_is_answered_then_connection_closes() {
    use flow3d_serve::{read_frame, write_frame};

    let server = Server::new(ServerConfig::default()).unwrap();
    let (mut ours, theirs) = std::os::unix::net::UnixStream::pair().unwrap();
    let handler = server.clone();
    std::thread::spawn(move || handler.handle_connection(theirs));

    // A healthy request first, to prove the connection was fine.
    write_frame(&mut ours, &obj(vec![("cmd", Json::Str("ping".into()))])).unwrap();
    let resp = read_frame(&mut ours).unwrap().unwrap();
    assert_ok(&resp);

    // Now garbage: a frame whose payload is not JSON.
    use std::io::Write;
    ours.write_all(&3u32.to_be_bytes()).unwrap();
    ours.write_all(b"{x}").unwrap();
    ours.flush().unwrap();
    let resp = read_frame(&mut ours).unwrap().unwrap();
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")),
        Some(&Json::Str("malformed_frame".into()))
    );
    // The connection is dropped after the error response.
    assert!(read_frame(&mut ours).unwrap().is_none());

    // The server survives and serves a fresh connection.
    let mut client = socketpair_client(&server);
    let resp = client
        .request(&obj(vec![("cmd", Json::Str("ping".into()))]))
        .unwrap();
    assert_ok(&resp);
    shutdown_and_join(&mut client, &server);
}

/// Two cases served concurrently from two connections: every response
/// is still bit-identical to the one-shot API — sharding must never
/// leak state across cases.
#[cfg(unix)]
#[test]
fn concurrent_connections_stay_deterministic() {
    let d = design(12);
    let base = base_placement(&d);
    let server = Server::new(ServerConfig::default()).unwrap();

    let mut setup = socketpair_client(&server);
    for name in ["a", "b"] {
        let resp = setup.request(&load_request(name, &d, &base)).unwrap();
        assert_ok(&resp);
    }

    let sets = [
        pileup(&base, &[0, 1, 2, 3, 4], 5),
        pileup(&base, &[6, 7, 8, 9, 10], 11),
    ];
    let expected: Vec<String> = sets.iter().map(|s| one_shot(&d, &base, s)).collect();

    std::thread::scope(|scope| {
        for (name, (spec, want)) in ["a", "b"].into_iter().zip(sets.iter().zip(&expected)) {
            let server = &server;
            scope.spawn(move || {
                let mut client = socketpair_client(server);
                for _ in 0..4 {
                    let resp = client.request(&eco_request(name, spec)).unwrap();
                    let result = assert_ok(&resp);
                    assert_eq!(result_str(result, "legal"), want.as_str(), "case {name}");
                }
            });
        }
    });

    shutdown_and_join(&mut setup, &server);
}

/// Shutdown drains: requests admitted before the shutdown all complete
/// and answer `ok`; requests after it are refused with `shutting_down`.
#[test]
fn shutdown_drains_admitted_requests() {
    let d = design(12);
    let base = base_placement(&d);
    let server = Server::new(ServerConfig::default()).unwrap();
    let result = server.process(1, parse_request(&load_request("demo", &d, &base)));
    assert_ok(&result);

    let spec = pileup(&base, &[0, 1, 2, 3, 4], 5);
    let expected = one_shot(&d, &base, &spec);
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for id in 2..5 {
            let (server, spec) = (&server, &spec);
            workers.push(
                scope.spawn(move || server.process(id, parse_request(&eco_request("demo", spec)))),
            );
        }
        // Give the three ECOs time to be *admitted* (admission is a
        // lock-push-unlock, execution can take as long as it likes).
        std::thread::sleep(std::time::Duration::from_millis(300));
        let resp = server.process(
            5,
            parse_request(&obj(vec![("cmd", Json::Str("shutdown".into()))])),
        );
        assert_ok(&resp);
        for worker in workers {
            let resp = worker.join().unwrap();
            let result = assert_ok(&resp);
            assert_eq!(
                result_str(result, "legal"),
                expected,
                "drained request diverged"
            );
        }
    });
    server.join();
    assert!(server.is_done());

    // Late work is refused, but inspection still answers.
    let resp = server.process(6, parse_request(&eco_request("demo", &spec)));
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")),
        Some(&Json::Str("shutting_down".into()))
    );
    let resp = server.process(
        7,
        parse_request(&obj(vec![("cmd", Json::Str("ping".into()))])),
    );
    assert_ok(&resp);
}

/// The TCP listener path: bind an ephemeral port, serve, shut down, and
/// observe the accept loop exit cleanly.
#[test]
fn tcp_listener_round_trips_and_stops() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Server::new(ServerConfig::default()).unwrap();
    let acceptor = server.clone();
    let accept_thread = std::thread::spawn(move || acceptor.serve_listener(listener));

    let mut client = Client::connect_tcp(addr).unwrap();
    let resp = client
        .request(&obj(vec![("cmd", Json::Str("ping".into()))]))
        .unwrap();
    assert_ok(&resp);
    shutdown_and_join(&mut client, &server);
    accept_thread.join().unwrap().unwrap();
}

fn parse_request(json: &Json) -> flow3d_serve::Request {
    flow3d_serve::Request::parse(json).unwrap()
}

/// The `metrics` command over the wire: after a known request sequence
/// (one load + four ecos), the windowed gauges count exactly those five
/// completed requests — the snapshot is taken before the metrics
/// request's own sample — with ordered, populated latency quantiles, a
/// live throughput, and an agreeing Prometheus rendering.
#[cfg(unix)]
#[test]
fn metrics_window_reports_known_request_sequence() {
    let d = design(12);
    let base = base_placement(&d);
    let server = Server::new(ServerConfig::default()).unwrap();
    let mut client = socketpair_client(&server);

    let resp = client.request(&load_request("demo", &d, &base)).unwrap();
    assert_ok(&resp);
    let spec = pileup(&base, &[0, 1, 2, 3, 4], 5);
    for _ in 0..4 {
        let resp = client.request(&eco_request("demo", &spec)).unwrap();
        assert_ok(&resp);
    }

    let resp = client
        .request(&obj(vec![("cmd", Json::Str("metrics".into()))]))
        .unwrap();
    let result = assert_ok(&resp);
    let window = result.get("window").expect("metrics carry a window");
    let gauge = |key: &str| {
        window
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing gauge `{key}` in {window}"))
    };
    assert_eq!(gauge("count"), 5, "load + 4 ecos completed beforehand");
    assert_eq!(gauge("errors"), 0);
    assert_eq!(window.get("error_rate"), Some(&Json::num(0.0)));
    let (p50, p90, p99) = (
        gauge("latency_p50_micros"),
        gauge("latency_p90_micros"),
        gauge("latency_p99_micros"),
    );
    assert!(
        p50 > 0 && p50 <= p90 && p90 <= p99 && p99 <= gauge("latency_max_micros"),
        "quantiles must be populated and ordered: p50={p50} p90={p90} p99={p99}"
    );
    let throughput = window
        .get("throughput_rps")
        .and_then(Json::as_f64)
        .expect("throughput gauge");
    assert!(throughput > 0.0, "five requests completed: {throughput}");
    assert!(
        result
            .get("uptime_secs")
            .and_then(Json::as_f64)
            .expect("uptime gauge")
            >= 0.0
    );
    let text = result
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("metrics carry a Prometheus rendering");
    assert!(text.contains("flow3d_serve_window_requests 5"));
    assert!(text.contains(&format!(
        "flow3d_serve_request_latency_micros{{quantile=\"0.99\"}} {p99}"
    )));
    assert!(text.contains("flow3d_serve_requests_total 5"));
    // The memo is enabled and the three replayed ecos were warm, so the
    // hit-rate gauge is present (it is absent entirely when disabled)
    // and positive.
    let rate = window
        .get("selection_memo_hit_rate")
        .and_then(Json::as_f64)
        .expect("memo enabled: the hit-rate gauge is a number, not null");
    assert!(rate > 0.0, "replays must register hits: {rate}");
    assert!(text.contains("flow3d_serve_selection_memo_hit_rate"));

    shutdown_and_join(&mut client, &server);
}

/// A request error leaves a flight-recorder dump on disk with reason
/// `request_error` and the failing span in its event ring; a graceful
/// shutdown overwrites it with a `shutdown` dump. The JSONL event log
/// records the failure at error level, one parseable object per line.
#[test]
fn request_error_and_shutdown_dump_flight_recorder() {
    let dir = std::env::temp_dir().join(format!("flow3d_flight_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let flight = dir.join("flight.json");
    let log = dir.join("events.jsonl");
    let server = Server::new(ServerConfig {
        flight_path: Some(flight.to_string_lossy().into_owned()),
        log_path: Some(log.to_string_lossy().into_owned()),
        log_level: flow3d_obs::LogLevel::Debug,
        ..ServerConfig::default()
    })
    .unwrap();

    // An eco against a case that was never loaded: `unknown_case`.
    let resp = server.process(1, parse_request(&eco_request("ghost", &[(0, 0, 0, None)])));
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")),
        Some(&Json::Str("unknown_case".into()))
    );
    let dump = Json::parse(std::fs::read_to_string(&flight).unwrap().trim()).unwrap();
    assert_eq!(dump.get("reason"), Some(&Json::Str("request_error".into())));
    let events = dump
        .get("events")
        .and_then(Json::as_array)
        .expect("dump carries the event ring");
    assert!(
        events
            .iter()
            .any(|e| e.get("event") == Some(&Json::Str("request_failed".into()))),
        "the failing span must be in the recorded events: {dump}"
    );

    let resp = server.process(
        2,
        parse_request(&obj(vec![("cmd", Json::Str("shutdown".into()))])),
    );
    assert_ok(&resp);
    server.join();
    let dump = Json::parse(std::fs::read_to_string(&flight).unwrap().trim()).unwrap();
    assert_eq!(dump.get("reason"), Some(&Json::Str("shutdown".into())));

    let text = std::fs::read_to_string(&log).unwrap();
    let mut saw_failure = false;
    for line in text.lines() {
        let record = Json::parse(line).expect("every log line is one JSON object");
        if record.get("event") == Some(&Json::Str("request_failed".into())) {
            assert_eq!(record.get("level"), Some(&Json::Str("error".into())));
            saw_failure = true;
        }
    }
    assert!(saw_failure, "the log must record the failed request");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--trace DIR` exports one Chrome trace per load/eco request, named
/// `<case>_r<id>.trace.json` and process-tagged `case#r<id>`.
#[test]
fn trace_dir_exports_per_request_chrome_traces() {
    let dir = std::env::temp_dir().join(format!("flow3d_traces_{}", std::process::id()));
    let server = Server::new(ServerConfig {
        trace_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .unwrap();
    let d = design(12);
    let base = base_placement(&d);
    let resp = server.process(1, parse_request(&load_request("demo", &d, &base)));
    assert_ok(&resp);
    let spec = pileup(&base, &[0, 1, 2, 3, 4], 5);
    let resp = server.process(2, parse_request(&eco_request("demo", &spec)));
    assert_ok(&resp);
    let resp = server.process(
        3,
        parse_request(&obj(vec![("cmd", Json::Str("shutdown".into()))])),
    );
    assert_ok(&resp);
    server.join();

    for id in [1u64, 2] {
        let path = dir.join(format!("demo_r{id}.trace.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing trace {}: {e}", path.display()));
        let doc = Json::parse(&text).expect("trace parses");
        assert!(
            doc.get("traceEvents").and_then(Json::as_array).is_some(),
            "trace carries traceEvents: {}",
            path.display()
        );
        assert!(text.contains(&format!("demo#r{id}")), "span process tag");
    }
    std::fs::remove_dir_all(&dir).ok();
}
