//! Macro-aware row layout: rows split into placeable segments.
//!
//! Macros are treated as blockages (paper §II-B): each placement row is
//! segregated into the maximal macro-free [`Segment`]s. All legalizers in
//! the workspace operate on this derived structure, and the 3D-Flow bin
//! grid divides each segment into uniform bins.

use crate::design::Design;
use crate::ids::{DieId, RowId, SegmentId};
use flow3d_geom::{Interval, Rect};

/// A maximal macro-free stretch of one placement row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// flow3d-tidy: allow(dead-pub) — design-database model type, part of the flow3d::db facade surface
pub struct Segment {
    /// Globally unique segment id within a [`RowLayout`].
    pub id: SegmentId,
    /// Die the segment lies on.
    pub die: DieId,
    /// Row within the die.
    pub row: RowId,
    /// y-coordinate of the row's bottom edge.
    pub y: i64,
    /// Horizontal extent, aligned inward to the die's site grid.
    pub span: Interval,
}

impl Segment {
    /// Segment width in DBU.
    #[inline]
    pub fn width(&self) -> i64 {
        self.span.len()
    }
}

/// The placeable structure of a design: every die's rows split into
/// macro-free segments, with nearest-row / nearest-segment queries.
///
/// # Examples
///
/// ```
/// use flow3d_db::{DesignBuilder, DieSpec, LibCellSpec, RowLayout, TechnologySpec, DieId};
///
/// # fn main() -> Result<(), flow3d_db::DbError> {
/// let design = DesignBuilder::new("demo")
///     .technology(TechnologySpec::new("T")
///         .lib_cell(LibCellSpec::std_cell("INV", 10, 12))
///         .lib_cell(LibCellSpec::macro_cell("RAM", 200, 24)))
///     .die(DieSpec::new("bottom", "T", (0, 0, 1000, 48), 12, 1, 1.0))
///     .macro_inst("ram0", "RAM", "bottom", 400, 0)
///     .build()?;
/// let layout = RowLayout::build(&design);
/// // Rows 0 and 1 are split by the macro into two segments each.
/// assert_eq!(layout.segments_in_row(DieId::BOTTOM, 0.into()).len(), 2);
/// // Rows 2 and 3 are unobstructed.
/// assert_eq!(layout.segments_in_row(DieId::BOTTOM, 2.into()).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowLayout {
    segments: Vec<Segment>,
    /// `per_die_row[die][row]` — ids of the row's segments sorted by x.
    per_die_row: Vec<Vec<Vec<SegmentId>>>,
}

impl RowLayout {
    /// Computes the layout of `design`: subtracts every macro footprint
    /// from the rows of its die and aligns the resulting segment bounds
    /// inward to the site grid. Zero-width segments are dropped.
    pub fn build(design: &Design) -> Self {
        let mut segments = Vec::new();
        let mut per_die_row = Vec::with_capacity(design.num_dies());

        for (die_idx, die) in design.dies().iter().enumerate() {
            let die_id = DieId::new(die_idx);
            let blockages = design.macro_rects_on(die_id);
            let mut rows_vec = Vec::with_capacity(die.num_rows());

            for row in &die.rows {
                let row_rect = Rect::new(row.span.lo, row.y, row.span.hi, row.y + die.row_height);
                // Collect blocked x-intervals for this row.
                let mut blocked: Vec<Interval> = blockages
                    .iter()
                    .filter(|b| b.overlaps(&row_rect))
                    .map(|b| Interval::new(b.xlo.max(row.span.lo), b.xhi.min(row.span.hi)))
                    .collect();
                blocked.sort();

                let mut free = Vec::new();
                let mut cursor = row.span.lo;
                for b in &blocked {
                    if b.lo > cursor {
                        free.push(Interval::new(cursor, b.lo));
                    }
                    cursor = cursor.max(b.hi);
                }
                if cursor < row.span.hi {
                    free.push(Interval::new(cursor, row.span.hi));
                }

                let mut ids = Vec::with_capacity(free.len());
                for f in free {
                    // Align inward to the site grid so every position in the
                    // segment is a legal site start.
                    let lo = flow3d_geom::snap_up(f.lo, die.outline.xlo, die.site_width);
                    let hi = flow3d_geom::snap_down(f.hi, die.outline.xlo, die.site_width);
                    if lo >= hi {
                        continue;
                    }
                    let id = SegmentId::new(segments.len());
                    segments.push(Segment {
                        id,
                        die: die_id,
                        row: row.id,
                        y: row.y,
                        span: Interval::new(lo, hi),
                    });
                    ids.push(id);
                }
                rows_vec.push(ids);
            }
            per_die_row.push(rows_vec);
        }

        Self {
            segments,
            per_die_row,
        }
    }

    /// All segments, indexed by [`SegmentId`].
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The segment with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// Number of segments across all dies.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Ids of the segments of `row` on `die`, sorted by x.
    ///
    /// Returns an empty slice for out-of-range rows.
    pub fn segments_in_row(&self, die: DieId, row: RowId) -> &[SegmentId] {
        self.per_die_row
            .get(die.index())
            .and_then(|rows| rows.get(row.index()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The segment of `row` on `die` containing `x`, if any.
    pub fn segment_containing(&self, die: DieId, row: RowId, x: i64) -> Option<&Segment> {
        self.segments_in_row(die, row)
            .iter()
            .map(|&id| self.segment(id))
            .find(|s| s.span.contains_point(x))
    }

    /// The segment of `row` on `die` nearest to `x` that is at least
    /// `min_width` wide, if any.
    pub fn nearest_segment_in_row(
        &self,
        die: DieId,
        row: RowId,
        x: i64,
        min_width: i64,
    ) -> Option<&Segment> {
        self.segments_in_row(die, row)
            .iter()
            .map(|&id| self.segment(id))
            .filter(|s| s.width() >= min_width)
            .min_by_key(|s| s.span.distance_to_point(x))
    }

    /// The legal position on `die` nearest to `(x, y)` that fits an object
    /// of width `width`: searches rows outward from the nearest row,
    /// stopping when the vertical distance alone exceeds the best found
    /// total Manhattan distance.
    ///
    /// Returns `(segment, snapped_x)` or `None` if no segment on the die is
    /// wide enough.
    pub fn nearest_position(
        &self,
        design: &Design,
        die: DieId,
        x: i64,
        y: i64,
        width: i64,
    ) -> Option<(&Segment, i64)> {
        let d = design.die(die);
        let num_rows = d.num_rows();
        if num_rows == 0 {
            return None;
        }
        let center = d.nearest_row(y)?.id.index() as i64;

        let mut best: Option<(&Segment, i64, i64)> = None; // (seg, x, dist)
                                                           // Candidate offsets 0, +1, -1, +2, -2, ... from the nearest row.
        for step in 0..(2 * num_rows as i64) {
            let offset = if step % 2 == 0 {
                step / 2
            } else {
                -(step / 2 + 1)
            };
            let row_idx = center + offset;
            if row_idx < 0 || row_idx >= num_rows as i64 {
                continue;
            }
            let row_y = d.rows[row_idx as usize].y;
            let dy = (row_y - y).abs();
            if let Some((_, _, best_dist)) = best {
                if dy > best_dist {
                    // Rows are visited in non-decreasing |offset|; once even
                    // the vertical distance of this ring exceeds the best
                    // total, only check the other side of the ring.
                    if offset > 0 {
                        continue;
                    } else {
                        break;
                    }
                }
            }
            if let Some(seg) =
                self.nearest_segment_in_row(die, RowId::new(row_idx as usize), x, width)
            {
                // flow3d-tidy: allow(panic-unwrap) — invariant: nearest_segment_in_row only returns segments that fit `width`
                let sx = seg.span.nearest_fit(x, width).expect("filtered by width");
                let sx = d.snap_to_site(sx).clamp(seg.span.lo, seg.span.hi - width);
                let dist = (sx - x).abs() + dy;
                if best.is_none_or(|(_, _, bd)| dist < bd) {
                    best = Some((seg, sx, dist));
                }
            }
        }
        best.map(|(seg, sx, _)| (seg, sx))
    }

    /// Total placeable width (sum of segment widths) on `die`.
    pub fn free_width(&self, die: DieId) -> i64 {
        self.segments
            .iter()
            .filter(|s| s.die == die)
            .map(Segment::width)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignBuilder, DieSpec};
    use crate::tech::{LibCellSpec, TechnologySpec};

    fn design_with_macro() -> Design {
        DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("T")
                    .lib_cell(LibCellSpec::std_cell("INV", 10, 12))
                    .lib_cell(LibCellSpec::macro_cell("RAM", 200, 24)),
            )
            .die(DieSpec::new("bottom", "T", (0, 0, 1000, 48), 12, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 1000, 48), 12, 1, 1.0))
            .macro_inst("ram0", "RAM", "bottom", 400, 0)
            .build()
            .unwrap()
    }

    #[test]
    fn macro_splits_covered_rows_only() {
        let d = design_with_macro();
        let layout = RowLayout::build(&d);
        // Macro spans y 0..24, covering rows 0 and 1 of 4.
        assert_eq!(layout.segments_in_row(DieId::BOTTOM, 0.into()).len(), 2);
        assert_eq!(layout.segments_in_row(DieId::BOTTOM, 1.into()).len(), 2);
        assert_eq!(layout.segments_in_row(DieId::BOTTOM, 2.into()).len(), 1);
        assert_eq!(layout.segments_in_row(DieId::BOTTOM, 3.into()).len(), 1);
        // Top die is unobstructed.
        for r in 0..4 {
            assert_eq!(layout.segments_in_row(DieId::TOP, r.into()).len(), 1);
        }
        let seg = layout
            .segment_containing(DieId::BOTTOM, 0.into(), 0)
            .unwrap();
        assert_eq!(seg.span, Interval::new(0, 400));
        let seg = layout
            .segment_containing(DieId::BOTTOM, 0.into(), 700)
            .unwrap();
        assert_eq!(seg.span, Interval::new(600, 1000));
    }

    #[test]
    fn free_width_accounts_for_blockage() {
        let d = design_with_macro();
        let layout = RowLayout::build(&d);
        assert_eq!(layout.free_width(DieId::BOTTOM), 4 * 1000 - 2 * 200);
        assert_eq!(layout.free_width(DieId::TOP), 4 * 1000);
    }

    #[test]
    fn segment_containing_is_exclusive_of_blockage() {
        let d = design_with_macro();
        let layout = RowLayout::build(&d);
        assert!(layout
            .segment_containing(DieId::BOTTOM, 0.into(), 450)
            .is_none());
        assert!(layout
            .segment_containing(DieId::BOTTOM, 0.into(), 399)
            .is_some());
    }

    #[test]
    fn nearest_segment_in_row_respects_min_width() {
        let d = design_with_macro();
        let layout = RowLayout::build(&d);
        // Left segment is 400 wide, right one 400 wide; ask for something
        // wider than both.
        assert!(layout
            .nearest_segment_in_row(DieId::BOTTOM, 0.into(), 450, 500)
            .is_none());
        let seg = layout
            .nearest_segment_in_row(DieId::BOTTOM, 0.into(), 450, 100)
            .unwrap();
        assert_eq!(seg.span.lo, 0); // distance 50 to [0,400) vs 150 to [600,1000)
    }

    #[test]
    fn nearest_position_snaps_into_segment() {
        let d = design_with_macro();
        let layout = RowLayout::build(&d);
        // Desired position is inside the macro; nearest fit is at its edge.
        let (seg, x) = layout
            .nearest_position(&d, DieId::BOTTOM, 410, 0, 10)
            .unwrap();
        assert_eq!(seg.row.index(), 0);
        assert_eq!(x, 390); // right-aligned against the macro's left edge

        // Deeper inside the macro the unobstructed row 2 (vertical distance
        // 24) is closer in Manhattan terms than sliding 60 horizontally.
        let (seg, x) = layout
            .nearest_position(&d, DieId::BOTTOM, 450, 0, 10)
            .unwrap();
        assert_eq!(seg.row.index(), 2);
        assert_eq!(x, 450);
    }

    #[test]
    fn nearest_position_jumps_rows_for_wide_objects() {
        let d = design_with_macro();
        let layout = RowLayout::build(&d);
        // Width 500 fits only in the unobstructed rows 2 and 3.
        let (seg, _) = layout
            .nearest_position(&d, DieId::BOTTOM, 450, 0, 500)
            .unwrap();
        assert_eq!(seg.row.index(), 2);
    }

    #[test]
    fn nearest_position_none_when_nothing_fits() {
        let d = design_with_macro();
        let layout = RowLayout::build(&d);
        assert!(layout
            .nearest_position(&d, DieId::BOTTOM, 0, 0, 5000)
            .is_none());
    }

    #[test]
    fn segments_have_consistent_ids() {
        let d = design_with_macro();
        let layout = RowLayout::build(&d);
        for (i, s) in layout.segments().iter().enumerate() {
            assert_eq!(s.id.index(), i);
            assert_eq!(layout.segment(s.id), s);
        }
    }

    #[test]
    fn site_alignment_shrinks_segments_inward() {
        // Site width 7; macro edges at 400 and 600 are not multiples of 7.
        let d = DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("T")
                    .lib_cell(LibCellSpec::std_cell("INV", 7, 12))
                    .lib_cell(LibCellSpec::macro_cell("RAM", 200, 12)),
            )
            .die(DieSpec::new("bottom", "T", (0, 0, 994, 12), 12, 7, 1.0))
            .macro_inst("ram0", "RAM", "bottom", 400, 0)
            .build()
            .unwrap();
        let layout = RowLayout::build(&d);
        let segs = layout.segments_in_row(DieId::BOTTOM, 0.into());
        assert_eq!(segs.len(), 2);
        let left = layout.segment(segs[0]);
        let right = layout.segment(segs[1]);
        assert_eq!(left.span.hi, 399); // snap_down(400, 0, 7)
        assert_eq!(right.span.lo, 602); // snap_up(600, 0, 7)
        assert_eq!(right.span.hi, 994);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::design::{DesignBuilder, DieSpec};
    use crate::tech::{LibCellSpec, TechnologySpec};
    use proptest::prelude::*;

    proptest! {
        /// For arbitrary non-overlapping macro sets, the computed segments
        /// (a) never intersect a macro, (b) never overlap each other, and
        /// (c) together with the macros account for every row's width up
        /// to site-alignment loss at macro borders.
        #[test]
        fn segments_partition_rows_around_macros(
            placements in proptest::collection::vec((0i64..20, 0i64..4), 0..4),
            site in 1i64..4,
        ) {
            let mut b = DesignBuilder::new("t")
                .technology(
                    TechnologySpec::new("T")
                        .lib_cell(LibCellSpec::std_cell("C", 10, 10))
                        .lib_cell(LibCellSpec::macro_cell("M", 60, 20)),
                )
                .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, site, 1.0))
                .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, site, 1.0));
            // Place macros on a coarse grid; skip overlapping candidates.
            let mut placed: Vec<Rect> = Vec::new();
            for (k, &(gx, gy)) in placements.iter().enumerate() {
                let x = gx * 17; // arbitrary, may be off the site grid
                let y = gy * 10;
                if x + 60 > 400 || y + 20 > 40 {
                    continue;
                }
                let rect = Rect::new(x, y, x + 60, y + 20);
                if placed.iter().any(|r| r.overlaps(&rect)) {
                    continue;
                }
                placed.push(rect);
                b = b.macro_inst(format!("m{k}"), "M", "bottom", x, y);
            }
            let design = b.build().unwrap();
            let layout = RowLayout::build(&design);

            let macros = design.macro_rects_on(DieId::BOTTOM);
            for seg in layout.segments().iter().filter(|s| s.die == DieId::BOTTOM) {
                let seg_rect = Rect::new(seg.span.lo, seg.y, seg.span.hi, seg.y + 10);
                for m in &macros {
                    prop_assert!(!seg_rect.overlaps(m), "segment {seg:?} overlaps macro {m}");
                }
                // Site alignment of both edges.
                prop_assert_eq!((seg.span.lo) % site, 0);
            }
            // Per row: segments disjoint, and free width + blocked width +
            // alignment loss == row width.
            let die = design.die(DieId::BOTTOM);
            for row in &die.rows {
                let segs: Vec<&Segment> = layout
                    .segments_in_row(DieId::BOTTOM, row.id)
                    .iter()
                    .map(|&id| layout.segment(id))
                    .collect();
                for w in segs.windows(2) {
                    prop_assert!(w[0].span.hi <= w[1].span.lo);
                }
                let free: i64 = segs.iter().map(|s| s.width()).sum();
                let row_rect = Rect::new(row.span.lo, row.y, row.span.hi, row.y + 10);
                let blocked: i64 = macros
                    .iter()
                    .map(|m| row_rect.intersection(m).map(|i| i.width()).unwrap_or(0))
                    .sum();
                // Alignment can shave at most (site − 1) per macro side + 1.
                let max_loss = (placed.len() as i64 * 2 + 2) * (site - 1);
                prop_assert!(free + blocked >= row.span.len() - max_loss,
                    "row {}: free {free} + blocked {blocked} vs {}", row.id, row.span.len());
                prop_assert!(free + blocked <= row.span.len());
            }
        }
    }
}
