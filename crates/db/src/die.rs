//! Dies and placement rows.

use crate::ids::{RowId, TechId};
use flow3d_geom::{Interval, Rect};

/// One horizontal placement row of a die.
///
/// Standard cells placed in the row have their lower-left y equal to the
/// row's `y` and their height equal to the die's row height.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Row index within the die, counted from the bottom.
    pub id: RowId,
    /// y-coordinate of the row's bottom edge.
    pub y: i64,
    /// Horizontal extent of the row.
    pub span: Interval,
}

impl Row {
    /// Vertical extent `[y, y + row_height)` of the row.
    #[inline]
    pub fn y_span(&self, row_height: i64) -> Interval {
        Interval::with_len(self.y, row_height)
    }
}

/// One die of the 3D stack.
#[derive(Debug, Clone, PartialEq)]
// flow3d-tidy: allow(dead-pub) — design-database model type, part of the flow3d::db facade surface
pub struct Die {
    /// Die name (e.g. `"top"`, `"bottom"`).
    pub name: String,
    /// Technology the die is fabricated in.
    pub tech: TechId,
    /// Placeable outline.
    pub outline: Rect,
    /// Height of every placement row, the paper's `h_r^+` / `h_r^-`.
    pub row_height: i64,
    /// Width of a placement site; legal x-positions are multiples of this
    /// from the outline's left edge.
    pub site_width: i64,
    /// Maximum fraction of placeable area that standard cells may occupy
    /// (the contest's `MaxUtil`, as a fraction in `(0, 1]`).
    pub max_util: f64,
    /// Placement rows, bottom to top.
    pub rows: Vec<Row>,
}

impl Die {
    /// Builds a die whose rows tile the outline from the bottom edge.
    ///
    /// Rows are generated at `outline.ylo + k * row_height` for as many
    /// full rows as fit in the outline.
    ///
    /// # Panics
    ///
    /// Panics if `row_height <= 0` or `site_width <= 0`.
    pub fn with_uniform_rows(
        name: impl Into<String>,
        tech: TechId,
        outline: Rect,
        row_height: i64,
        site_width: i64,
        max_util: f64,
    ) -> Self {
        assert!(row_height > 0, "non-positive row height");
        assert!(site_width > 0, "non-positive site width");
        let num_rows = (outline.height() / row_height).max(0) as usize;
        let rows = (0..num_rows)
            .map(|k| Row {
                id: RowId::new(k),
                y: outline.ylo + k as i64 * row_height,
                span: outline.x_span(),
            })
            .collect();
        Self {
            name: name.into(),
            tech,
            outline,
            row_height,
            site_width,
            max_util,
            rows,
        }
    }

    /// Number of placement rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The row whose vertical span contains `y`, if any.
    pub fn row_containing(&self, y: i64) -> Option<&Row> {
        if self.rows.is_empty() || y < self.outline.ylo {
            return None;
        }
        let idx = (y - self.outline.ylo) / self.row_height;
        let row = self.rows.get(idx as usize)?;
        row.y_span(self.row_height).contains_point(y).then_some(row)
    }

    /// The row whose bottom edge is nearest to `y` (ties go to the lower
    /// row). Returns `None` only for a die without rows.
    pub fn nearest_row(&self, y: i64) -> Option<&Row> {
        if self.rows.is_empty() {
            return None;
        }
        let rel = y - self.outline.ylo;
        let idx = rel.div_euclid(self.row_height);
        let rem = rel.rem_euclid(self.row_height);
        // Row bottoms sit at multiples of row_height; choose between row
        // `idx` (bottom below y) and row `idx + 1`.
        let idx = if rem * 2 <= self.row_height {
            idx
        } else {
            idx + 1
        };
        let idx = idx.clamp(0, self.rows.len() as i64 - 1) as usize;
        self.rows.get(idx)
    }

    /// Total placeable row area of the die in DBU² (before subtracting
    /// macro blockages).
    pub fn rows_area(&self) -> i64 {
        self.rows
            .iter()
            .map(|r| r.span.len() * self.row_height)
            .sum()
    }

    /// Snaps `x` to the nearest legal site position, ignoring bounds.
    #[inline]
    pub fn snap_to_site(&self, x: i64) -> i64 {
        flow3d_geom::snap_nearest(x, self.outline.xlo, self.site_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Die {
        Die::with_uniform_rows("d", TechId::new(0), Rect::new(0, 0, 100, 50), 10, 2, 1.0)
    }

    #[test]
    fn uniform_rows_tile_the_outline() {
        let d = die();
        assert_eq!(d.num_rows(), 5);
        assert_eq!(d.rows[0].y, 0);
        assert_eq!(d.rows[4].y, 40);
        assert_eq!(d.rows_area(), 100 * 50);
    }

    #[test]
    fn partial_top_row_is_dropped() {
        let d = Die::with_uniform_rows("d", TechId::new(0), Rect::new(0, 0, 100, 55), 10, 2, 1.0);
        assert_eq!(d.num_rows(), 5);
        assert_eq!(d.rows_area(), 100 * 50);
    }

    #[test]
    fn row_containing_edges() {
        let d = die();
        assert_eq!(d.row_containing(0).unwrap().id.index(), 0);
        assert_eq!(d.row_containing(9).unwrap().id.index(), 0);
        assert_eq!(d.row_containing(10).unwrap().id.index(), 1);
        assert!(d.row_containing(-1).is_none());
        assert!(d.row_containing(50).is_none());
    }

    #[test]
    fn nearest_row_rounds_and_clamps() {
        let d = die();
        assert_eq!(d.nearest_row(4).unwrap().id.index(), 0);
        assert_eq!(d.nearest_row(5).unwrap().id.index(), 0); // tie -> lower
        assert_eq!(d.nearest_row(6).unwrap().id.index(), 1);
        assert_eq!(d.nearest_row(-100).unwrap().id.index(), 0);
        assert_eq!(d.nearest_row(1000).unwrap().id.index(), 4);
    }

    #[test]
    fn nearest_row_with_offset_outline() {
        let d =
            Die::with_uniform_rows("d", TechId::new(0), Rect::new(0, 100, 100, 150), 10, 2, 1.0);
        assert_eq!(d.nearest_row(104).unwrap().y, 100);
        assert_eq!(d.nearest_row(117).unwrap().y, 120);
    }

    #[test]
    fn snap_to_site_uses_outline_origin() {
        let d = Die::with_uniform_rows("d", TechId::new(0), Rect::new(5, 0, 105, 50), 10, 4, 1.0);
        assert_eq!(d.snap_to_site(5), 5);
        assert_eq!(d.snap_to_site(8), 9);
        assert_eq!(d.snap_to_site(6), 5);
    }
}
