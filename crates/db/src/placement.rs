//! Placement states: continuous global placements and legal placements.

use crate::design::Design;
use crate::ids::{CellId, DieId};
use flow3d_geom::{FPoint, Point};

/// A continuous 3D global placement, the input to legalization.
///
/// Each cell has a continuous lower-left position and a *die affinity* in
/// `[0, num_dies - 1]`: true-3D analytical placers relax the discrete die
/// assignment into this continuous variable, and the legalizer starts by
/// snapping each cell to its nearest die (paper §II-B).
#[derive(Debug, Clone, PartialEq)]
pub struct Placement3d {
    pos: Vec<FPoint>,
    die_affinity: Vec<f64>,
}

impl Placement3d {
    /// Creates a placement with all cells at the origin of die 0.
    pub fn new(num_cells: usize) -> Self {
        Self {
            pos: vec![FPoint::default(); num_cells],
            die_affinity: vec![0.0; num_cells],
        }
    }

    /// Creates a placement from parallel position / affinity vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_parts(pos: Vec<FPoint>, die_affinity: Vec<f64>) -> Self {
        assert_eq!(
            pos.len(),
            die_affinity.len(),
            "position and affinity vectors must be parallel"
        );
        Self { pos, die_affinity }
    }

    /// Number of placed cells.
    pub fn num_cells(&self) -> usize {
        self.pos.len()
    }

    /// Continuous lower-left position of `cell`.
    #[inline]
    pub fn pos(&self, cell: CellId) -> FPoint {
        self.pos[cell.index()]
    }

    /// Sets the continuous position of `cell`.
    #[inline]
    pub fn set_pos(&mut self, cell: CellId, pos: FPoint) {
        self.pos[cell.index()] = pos;
    }

    /// Continuous die affinity of `cell` in `[0, num_dies - 1]`.
    #[inline]
    pub fn die_affinity(&self, cell: CellId) -> f64 {
        self.die_affinity[cell.index()]
    }

    /// Sets the die affinity of `cell`.
    #[inline]
    pub fn set_die_affinity(&mut self, cell: CellId, affinity: f64) {
        self.die_affinity[cell.index()] = affinity;
    }

    /// The discrete die nearest to the cell's affinity, clamped to the
    /// design's stack height.
    pub fn nearest_die(&self, cell: CellId, num_dies: usize) -> DieId {
        let a = self.die_affinity[cell.index()];
        let idx = a.round().clamp(0.0, (num_dies - 1) as f64) as usize;
        DieId::new(idx)
    }
}

/// A discrete placement: every cell on a die at integer coordinates.
///
/// Produced by legalizers; legality (row/site alignment, no overlap) is
/// *not* an invariant of the type — use the checker in `flow3d-metrics` to
/// verify it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalPlacement {
    pos: Vec<Point>,
    die: Vec<DieId>,
}

impl LegalPlacement {
    /// Creates a placement with all cells at the origin of die 0.
    pub fn new(num_cells: usize) -> Self {
        Self {
            pos: vec![Point::default(); num_cells],
            die: vec![DieId::BOTTOM; num_cells],
        }
    }

    /// Creates a placement from parallel position / die vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_parts(pos: Vec<Point>, die: Vec<DieId>) -> Self {
        assert_eq!(
            pos.len(),
            die.len(),
            "position and die vectors must be parallel"
        );
        Self { pos, die }
    }

    /// Number of placed cells.
    pub fn num_cells(&self) -> usize {
        self.pos.len()
    }

    /// Lower-left corner of `cell`.
    #[inline]
    pub fn pos(&self, cell: CellId) -> Point {
        self.pos[cell.index()]
    }

    /// Die of `cell`.
    #[inline]
    pub fn die(&self, cell: CellId) -> DieId {
        self.die[cell.index()]
    }

    /// Places `cell` at `pos` on `die`.
    #[inline]
    pub fn place(&mut self, cell: CellId, pos: Point, die: DieId) {
        self.pos[cell.index()] = pos;
        self.die[cell.index()] = die;
    }

    /// Iterates `(cell, position, die)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, Point, DieId)> + '_ {
        self.pos
            .iter()
            .zip(&self.die)
            .enumerate()
            .map(|(i, (&p, &d))| (CellId::new(i), p, d))
    }

    /// Number of cells whose die differs from the nearest-die snap of
    /// `global` — the paper's `#Move` column in Table V.
    pub fn cross_die_moves(&self, global: &Placement3d, num_dies: usize) -> usize {
        (0..self.pos.len())
            .filter(|&i| {
                let c = CellId::new(i);
                global.nearest_die(c, num_dies) != self.die(c)
            })
            .count()
    }
}

/// Snaps a global placement to the nearest die per cell without moving
/// x/y — the starting state for 2D legalizers, which keep die assignments
/// fixed (paper §I).
// flow3d-tidy: allow(dead-pub) — design-database model type, part of the flow3d::db facade surface
pub fn snap_to_nearest_die(design: &Design, global: &Placement3d) -> Vec<DieId> {
    (0..global.num_cells())
        .map(|i| global.nearest_die(CellId::new(i), design.num_dies()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_die_rounds_affinity() {
        let mut p = Placement3d::new(3);
        p.set_die_affinity(CellId::new(0), 0.2);
        p.set_die_affinity(CellId::new(1), 0.6);
        p.set_die_affinity(CellId::new(2), 1.7);
        assert_eq!(p.nearest_die(CellId::new(0), 2), DieId::BOTTOM);
        assert_eq!(p.nearest_die(CellId::new(1), 2), DieId::TOP);
        // Clamped to the stack height.
        assert_eq!(p.nearest_die(CellId::new(2), 2), DieId::TOP);
        assert_eq!(p.nearest_die(CellId::new(2), 3), DieId::new(2));
    }

    #[test]
    fn legal_placement_roundtrip() {
        let mut lp = LegalPlacement::new(2);
        lp.place(CellId::new(1), Point::new(10, 20), DieId::TOP);
        assert_eq!(lp.pos(CellId::new(1)), Point::new(10, 20));
        assert_eq!(lp.die(CellId::new(1)), DieId::TOP);
        assert_eq!(lp.pos(CellId::new(0)), Point::ORIGIN);
        let triples: Vec<_> = lp.iter().collect();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[1], (CellId::new(1), Point::new(10, 20), DieId::TOP));
    }

    #[test]
    fn cross_die_moves_counts_changes() {
        let mut gp = Placement3d::new(3);
        gp.set_die_affinity(CellId::new(0), 0.0);
        gp.set_die_affinity(CellId::new(1), 1.0);
        gp.set_die_affinity(CellId::new(2), 0.9);
        let mut lp = LegalPlacement::new(3);
        lp.place(CellId::new(0), Point::ORIGIN, DieId::BOTTOM); // unchanged
        lp.place(CellId::new(1), Point::ORIGIN, DieId::BOTTOM); // moved
        lp.place(CellId::new(2), Point::ORIGIN, DieId::TOP); // unchanged
        assert_eq!(lp.cross_die_moves(&gp, 2), 1);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn from_parts_rejects_mismatched_lengths() {
        let _ = LegalPlacement::from_parts(vec![Point::ORIGIN], vec![]);
    }
}
