#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Design database for the 3D-Flow legalizer reproduction.
//!
//! This crate models everything a 3D-IC legalizer needs to know about a
//! design, following the F2F-bonded two-die setting of the ICCAD 2022/2023
//! contests (but generalized to any number of stacked dies):
//!
//! * [`Technology`] / [`LibCell`] — library cells with per-technology sizes,
//!   enabling heterogeneous integration where a cell has different widths on
//!   the top and bottom die (the paper's `w_c^+` / `w_c^-`).
//! * [`Die`] — outline, placement rows, site grid, technology binding and a
//!   maximum-utilization constraint.
//! * [`Design`] — instances (standard cells and fixed macros), nets and
//!   pins, plus name lookup tables. Built through [`DesignBuilder`] which
//!   validates cross-references.
//! * [`RowLayout`] — the derived structure legalizers work on: placement
//!   rows split into macro-free [`Segment`]s, with nearest-row /
//!   nearest-segment queries.
//! * [`Placement3d`] — a continuous global placement (positions plus soft
//!   die affinity) as produced by a true-3D analytical placer, and
//!   [`LegalPlacement`] — the discrete output of a legalizer.
//! * [`SoaView`] — a flat structure-of-arrays projection of the design
//!   (parallel `Vec<i64>` columns for width / height / target / die /
//!   row, u32-indexed) that the legalization hot path reads instead of
//!   chasing the id maps. [`ResolvedCase`] is the mirror-image input
//!   side: id-resolved parts a streaming parser hands to
//!   [`Design::from_resolved`].
//!
//! # Examples
//!
//! ```
//! use flow3d_db::{Design, DesignBuilder, DieSpec, LibCellSpec, TechnologySpec};
//!
//! # fn main() -> Result<(), flow3d_db::DbError> {
//! let design = DesignBuilder::new("demo")
//!     .technology(TechnologySpec::new("TA")
//!         .lib_cell(LibCellSpec::std_cell("INV", 10, 12).pin("A", 0, 6)))
//!     .technology(TechnologySpec::new("TB")
//!         .lib_cell(LibCellSpec::std_cell("INV", 8, 10).pin("A", 0, 5)))
//!     .die(DieSpec::new("bottom", "TA", (0, 0, 1000, 120), 12, 1, 0.9))
//!     .die(DieSpec::new("top", "TB", (0, 0, 1000, 120), 10, 1, 0.9))
//!     .cell("u1", "INV")
//!     .cell("u2", "INV")
//!     .net("n1", &[("u1", 0), ("u2", 0)])
//!     .build()?;
//! assert_eq!(design.num_cells(), 2);
//! assert_eq!(design.num_dies(), 2);
//! # Ok(())
//! # }
//! ```

pub mod design;
pub mod die;
pub mod error;
pub mod ids;
pub mod layout;
pub mod placement;
pub mod soa;
pub mod tech;

pub use design::{
    CellInst, Design, DesignBuilder, DieSpec, InstRef, MacroInst, Net, PinRef, ResolvedCase,
};
pub use die::{Die, Row};
pub use error::DbError;
pub use ids::{CellId, DieId, LibCellId, MacroId, NetId, RowId, SegmentId, TechId};
pub use layout::{RowLayout, Segment};
pub use placement::{LegalPlacement, Placement3d};
pub use soa::SoaView;
pub use tech::{LibCell, LibCellKind, LibCellSpec, PinDef, Technology, TechnologySpec};
