//! Flat structure-of-arrays legalization view.
//!
//! [`Design`] is id-map shaped: reading a cell's width on a die chases
//! `cells[cell] -> lib_cell -> dies[die].tech -> techs[tech].lib_cells`
//! through three indirections. That is the right shape for construction
//! and validation, but the legalization hot path reads the same few
//! scalars millions of times. [`SoaView`] flattens everything the flow
//! engine needs into parallel, u32-indexed columns — one contiguous
//! `Vec<i64>` per attribute, in the style of Coloquinte's legalizer
//! (`cellWidth_` / `targetX_` / `cellToRow_`) — so the inner loops read
//! columns instead of walking maps.
//!
//! # Columns
//!
//! * `width` — cell width per `(die, cell)`, die-major
//!   (`die * num_cells + cell`); heterogeneous stacks give each die its
//!   own width row.
//! * `row_height` — per die (every standard cell is one row tall).
//! * `target_x` / `target_y` — the rounded global-placement anchor per
//!   cell, identical to the legalizer's displacement reference.
//! * `die` — the nearest-die snap of the global placement per cell
//!   (the flow pass's initial assignment input).
//! * `row` — the row band on that die containing the cell's target,
//!   clamped to the die.
//!
//! # Build / invalidation rules
//!
//! A view is built **once** per `(design, global placement)` pair and is
//! immutable afterwards; it holds no back-references, so it can be kept
//! resident (e.g. by a serving engine) for as long as the design lives.
//! Any change to the design's libraries, dies, or cell list — or a new
//! global placement — invalidates the view; rebuild it. The geometry
//! columns ([`SoaView::geometry`] builds only those) depend on the
//! design alone and survive placement changes.

use crate::design::Design;
use crate::ids::{CellId, DieId};
use crate::placement::Placement3d;
use flow3d_geom::Point;

/// Flat, u32-indexed parallel columns of everything the legalization hot
/// path reads per cell. See the [module docs](self) for the layout and
/// the build/invalidation rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaView {
    num_cells: usize,
    /// Cell width per `(die, cell)`, die-major.
    width: Vec<i64>,
    /// Row (= standard cell) height per die.
    row_height: Vec<i64>,
    /// Rounded anchor x per cell; empty in geometry-only views.
    target_x: Vec<i64>,
    /// Rounded anchor y per cell; empty in geometry-only views.
    target_y: Vec<i64>,
    /// Nearest-die snap per cell; empty in geometry-only views.
    die: Vec<u8>,
    /// Row band of the target on the snapped die; empty in
    /// geometry-only views.
    row: Vec<u32>,
}

impl SoaView {
    /// Builds the full view from a design and its global placement:
    /// geometry columns plus per-cell targets, die snaps, and row bands.
    ///
    /// # Panics
    ///
    /// Panics if `global` does not cover exactly the design's cells.
    pub fn build(design: &Design, global: &Placement3d) -> Self {
        let n = design.num_cells();
        assert_eq!(
            global.num_cells(),
            n,
            "global placement does not match the design"
        );
        let mut view = Self::geometry(design);
        view.target_x = Vec::with_capacity(n);
        view.target_y = Vec::with_capacity(n);
        view.die = Vec::with_capacity(n);
        view.row = Vec::with_capacity(n);
        let num_dies = design.num_dies();
        for i in 0..n {
            let cell = CellId::new(i);
            let anchor = global.pos(cell).round();
            let die = global.nearest_die(cell, num_dies);
            let d = design.die(die);
            let band = (anchor.y - d.outline.ylo).div_euclid(d.row_height);
            let row = band.clamp(0, (d.num_rows() as i64 - 1).max(0)) as u32;
            view.target_x.push(anchor.x);
            view.target_y.push(anchor.y);
            view.die.push(die.0);
            view.row.push(row);
        }
        view
    }

    /// Builds only the geometry columns (`width`, `row_height`), which
    /// depend on the design alone. Target/die/row columns stay empty;
    /// their accessors panic. This is the right view for incremental
    /// paths that have no global placement.
    pub fn geometry(design: &Design) -> Self {
        let n = design.num_cells();
        let num_dies = design.num_dies();
        let mut width = Vec::with_capacity(num_dies * n);
        let mut row_height = Vec::with_capacity(num_dies);
        for d in 0..num_dies {
            let die = DieId::new(d);
            row_height.push(design.cell_height(die));
            // One pass per die resolves the tech indirection once and
            // then streams the per-cell lib lookups.
            for cell in design.cells() {
                width.push(design.lib_cell_on(cell.lib_cell, die).width);
            }
        }
        Self {
            num_cells: n,
            width,
            row_height,
            target_x: Vec::new(),
            target_y: Vec::new(),
            die: Vec::new(),
            row: Vec::new(),
        }
    }

    /// Number of cells covered by the view.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Number of dies covered by the view.
    pub fn num_dies(&self) -> usize {
        self.row_height.len()
    }

    /// `true` when the placement-dependent columns (`target_x`,
    /// `target_y`, `die`, `row`) are populated.
    pub fn has_targets(&self) -> bool {
        self.target_x.len() == self.num_cells
    }

    /// Width of `cell` on `die` — one flat load, no map chasing.
    #[inline]
    pub fn cell_width(&self, cell: CellId, die: DieId) -> i64 {
        self.width[die.index() * self.num_cells + cell.index()]
    }

    /// Height of any standard cell on `die` (the die's row height).
    #[inline]
    pub fn cell_height(&self, die: DieId) -> i64 {
        self.row_height[die.index()]
    }

    /// The whole width column of `die`, indexed by cell id — the shape a
    /// SIMD or GPU kernel consumes directly.
    pub fn width_column(&self, die: DieId) -> &[i64] {
        let lo = die.index() * self.num_cells;
        &self.width[lo..lo + self.num_cells]
    }

    /// Rounded global-placement anchor of `cell`.
    ///
    /// # Panics
    ///
    /// Panics on a geometry-only view (see [`has_targets`](Self::has_targets)).
    #[inline]
    pub fn target(&self, cell: CellId) -> Point {
        Point::new(self.target_x[cell.index()], self.target_y[cell.index()])
    }

    /// Nearest-die snap of `cell`.
    ///
    /// # Panics
    ///
    /// Panics on a geometry-only view (see [`has_targets`](Self::has_targets)).
    #[inline]
    pub fn assigned_die(&self, cell: CellId) -> DieId {
        DieId(self.die[cell.index()])
    }

    /// Row band of `cell`'s target on its snapped die.
    ///
    /// # Panics
    ///
    /// Panics on a geometry-only view (see [`has_targets`](Self::has_targets)).
    #[inline]
    pub fn assigned_row(&self, cell: CellId) -> u32 {
        self.row[cell.index()]
    }

    /// Checks every column against the id-map accessors it flattens.
    /// `global` is required iff the view [`has_targets`](Self::has_targets).
    /// Used by the equivalence test battery; O(dies × cells).
    pub fn is_consistent(&self, design: &Design, global: Option<&Placement3d>) -> bool {
        if self.num_cells != design.num_cells() || self.num_dies() != design.num_dies() {
            return false;
        }
        for d in 0..design.num_dies() {
            let die = DieId::new(d);
            if self.cell_height(die) != design.cell_height(die) {
                return false;
            }
            for i in 0..self.num_cells {
                let cell = CellId::new(i);
                if self.cell_width(cell, die) != design.cell_width(cell, die) {
                    return false;
                }
            }
        }
        match (self.has_targets(), global) {
            (false, _) => self.target_x.is_empty() && self.die.is_empty() && self.row.is_empty(),
            (true, None) => false,
            (true, Some(gp)) => {
                if gp.num_cells() != self.num_cells {
                    return false;
                }
                (0..self.num_cells).all(|i| {
                    let cell = CellId::new(i);
                    self.target(cell) == gp.pos(cell).round()
                        && self.assigned_die(cell) == gp.nearest_die(cell, design.num_dies())
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignBuilder, DieSpec};
    use crate::tech::{LibCellSpec, TechnologySpec};
    use flow3d_geom::FPoint;

    fn hetero_design(n: usize) -> Design {
        let mut b = DesignBuilder::new("soa")
            .technology(
                TechnologySpec::new("TA")
                    .lib_cell(LibCellSpec::std_cell("INV", 10, 12))
                    .lib_cell(LibCellSpec::std_cell("BUF", 14, 12)),
            )
            .technology(
                TechnologySpec::new("TB")
                    .lib_cell(LibCellSpec::std_cell("INV", 8, 10))
                    .lib_cell(LibCellSpec::std_cell("BUF", 11, 10)),
            )
            .die(DieSpec::new("bottom", "TA", (0, 0, 500, 120), 12, 1, 0.9))
            .die(DieSpec::new("top", "TB", (0, 0, 500, 120), 10, 1, 0.9));
        for i in 0..n {
            b = b.cell(format!("u{i}"), if i % 3 == 0 { "BUF" } else { "INV" });
        }
        b.build().unwrap()
    }

    fn spread_placement(n: usize) -> Placement3d {
        let mut gp = Placement3d::new(n);
        for i in 0..n {
            let cell = CellId::new(i);
            gp.set_pos(cell, FPoint::new(i as f64 * 7.3, (i % 11) as f64 * 11.6));
            gp.set_die_affinity(cell, (i % 2) as f64 * 0.9);
        }
        gp
    }

    #[test]
    fn full_view_matches_the_id_map_accessors() {
        let d = hetero_design(40);
        let gp = spread_placement(40);
        let view = SoaView::build(&d, &gp);
        assert!(view.has_targets());
        assert!(view.is_consistent(&d, Some(&gp)));
        // Spot-check the hetero widths through both paths.
        let c = CellId::new(0); // a BUF
        assert_eq!(view.cell_width(c, DieId::BOTTOM), 14);
        assert_eq!(view.cell_width(c, DieId::TOP), 11);
        assert_eq!(view.cell_height(DieId::TOP), 10);
    }

    #[test]
    fn geometry_view_has_no_targets() {
        let d = hetero_design(8);
        let view = SoaView::geometry(&d);
        assert!(!view.has_targets());
        assert!(view.is_consistent(&d, None));
        assert_eq!(view.width_column(DieId::BOTTOM).len(), 8);
        assert_eq!(view.width_column(DieId::TOP)[1], 8); // INV on TB
    }

    #[test]
    fn row_bands_are_clamped_to_the_die() {
        let d = hetero_design(4);
        let mut gp = spread_placement(4);
        gp.set_pos(CellId::new(0), FPoint::new(0.0, -50.0));
        gp.set_pos(CellId::new(1), FPoint::new(0.0, 10_000.0));
        gp.set_die_affinity(CellId::new(0), 0.0);
        gp.set_die_affinity(CellId::new(1), 0.0);
        let view = SoaView::build(&d, &gp);
        assert_eq!(view.assigned_row(CellId::new(0)), 0);
        // Bottom die: 120 tall, row height 12 -> rows 0..10.
        assert_eq!(view.assigned_row(CellId::new(1)), 9);
    }

    #[test]
    fn consistency_check_catches_divergence() {
        let d = hetero_design(6);
        let gp = spread_placement(6);
        let mut view = SoaView::build(&d, &gp);
        view.width[0] += 1;
        assert!(!view.is_consistent(&d, Some(&gp)));
    }
}
