//! The top-level design: instances, nets, dies and technologies.

use crate::die::Die;
use crate::error::DbError;
use crate::ids::{CellId, DieId, LibCellId, MacroId, NetId, TechId};
use crate::tech::{LibCell, Technology, TechnologySpec};
use flow3d_geom::{Point, Rect};
use std::collections::BTreeMap;

/// A movable standard-cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
// flow3d-tidy: allow(dead-pub) — design-database model type, part of the flow3d::db facade surface
pub struct CellInst {
    /// Instance name, unique among all instances.
    pub name: String,
    /// Library cell; the physical width depends on the die the cell is
    /// placed on (heterogeneous integration).
    pub lib_cell: LibCellId,
}

/// A fixed macro instance, pre-placed on a specific die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroInst {
    /// Instance name, unique among all instances.
    pub name: String,
    /// Library cell (must have [`LibCellKind::Macro`](crate::LibCellKind)).
    pub lib_cell: LibCellId,
    /// Die the macro is fixed on.
    pub die: DieId,
    /// Lower-left corner.
    pub pos: Point,
}

/// Reference to either a movable cell or a fixed macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstRef {
    /// A movable standard cell.
    Cell(CellId),
    /// A fixed macro.
    Macro(MacroId),
}

/// One pin connection of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinRef {
    /// The instance the pin belongs to.
    pub inst: InstRef,
    /// Pin index into the instance's library cell pin table.
    pub pin: usize,
}

/// A net connecting two or more pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name, unique among nets.
    pub name: String,
    /// Connected pins.
    pub pins: Vec<PinRef>,
}

/// A complete design: the immutable netlist and floorplan a legalizer works
/// against. Build with [`DesignBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    name: String,
    techs: Vec<Technology>,
    dies: Vec<Die>,
    cells: Vec<CellInst>,
    macros: Vec<MacroInst>,
    nets: Vec<Net>,
    cell_names: BTreeMap<String, CellId>,
    macro_names: BTreeMap<String, MacroId>,
    net_names: BTreeMap<String, NetId>,
}

impl Design {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of movable standard cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of fixed macros.
    pub fn num_macros(&self) -> usize {
        self.macros.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of dies in the stack.
    pub fn num_dies(&self) -> usize {
        self.dies.len()
    }

    /// All technologies, indexed by [`TechId`].
    pub fn techs(&self) -> &[Technology] {
        &self.techs
    }

    /// All dies, indexed by [`DieId`].
    pub fn dies(&self) -> &[Die] {
        &self.dies
    }

    /// All standard cells, indexed by [`CellId`].
    pub fn cells(&self) -> &[CellInst] {
        &self.cells
    }

    /// All macros, indexed by [`MacroId`].
    pub fn macros(&self) -> &[MacroInst] {
        &self.macros
    }

    /// All nets, indexed by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The die with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn die(&self, die: DieId) -> &Die {
        &self.dies[die.index()]
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell(&self, cell: CellId) -> &CellInst {
        &self.cells[cell.index()]
    }

    /// Looks up a cell id by instance name.
    pub fn cell_by_name(&self, name: &str) -> Option<CellId> {
        self.cell_names.get(name).copied()
    }

    /// Looks up a macro id by instance name.
    pub fn macro_by_name(&self, name: &str) -> Option<MacroId> {
        self.macro_names.get(name).copied()
    }

    /// Looks up a net id by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_names.get(name).copied()
    }

    /// The library-cell incarnation of `cell` on `die` (width differs per
    /// technology for heterogeneous stacks).
    pub fn lib_cell_on(&self, lib_cell: LibCellId, die: DieId) -> &LibCell {
        let tech = self.dies[die.index()].tech;
        &self.techs[tech.index()].lib_cells[lib_cell.index()]
    }

    /// Width of `cell` when placed on `die` — the paper's `w_c^+` / `w_c^-`.
    #[inline]
    pub fn cell_width(&self, cell: CellId, die: DieId) -> i64 {
        self.lib_cell_on(self.cells[cell.index()].lib_cell, die)
            .width
    }

    /// Height of any standard cell on `die` (equals the die's row height).
    #[inline]
    pub fn cell_height(&self, die: DieId) -> i64 {
        self.dies[die.index()].row_height
    }

    /// Mean standard-cell width on `die`, the paper's `w̄_c`, used to choose
    /// bin widths (`w_v = 10·w̄_c` flow phase, `5·w̄_c` post-optimization).
    ///
    /// Returns the die's site width for a design without cells.
    pub fn avg_cell_width(&self, die: DieId) -> f64 {
        if self.cells.is_empty() {
            return self.dies[die.index()].site_width as f64;
        }
        let total: i64 = self
            .cells
            .iter()
            .map(|c| self.lib_cell_on(c.lib_cell, die).width)
            .sum();
        total as f64 / self.cells.len() as f64
    }

    /// Footprint of macro `m` as a rectangle on its die.
    pub fn macro_rect(&self, m: MacroId) -> Rect {
        let mi = &self.macros[m.index()];
        let lc = self.lib_cell_on(mi.lib_cell, mi.die);
        Rect::with_size(mi.pos, lc.width, lc.height)
    }

    /// Footprints of all macros fixed on `die`.
    pub fn macro_rects_on(&self, die: DieId) -> Vec<Rect> {
        self.macros
            .iter()
            .enumerate()
            .filter(|(_, m)| m.die == die)
            .map(|(i, _)| self.macro_rect(MacroId::new(i)))
            .collect()
    }

    /// Placeable area of `die` in DBU²: row area minus macro blockage.
    pub fn free_area(&self, die: DieId) -> i64 {
        let d = &self.dies[die.index()];
        let blocked: i64 = self
            .macro_rects_on(die)
            .iter()
            .map(|r| {
                d.rows
                    .iter()
                    .map(|row| {
                        let row_rect =
                            Rect::new(row.span.lo, row.y, row.span.hi, row.y + d.row_height);
                        row_rect.overlap_area(r)
                    })
                    .sum::<i64>()
            })
            .sum();
        d.rows_area() - blocked
    }

    /// Pin offset of `pin` of instance `inst` when the instance sits on
    /// `die`.
    ///
    /// # Panics
    ///
    /// Panics if the pin index is out of range (the builder validates all
    /// net pins, so this only fires for hand-made [`PinRef`]s).
    pub fn pin_offset(&self, inst: InstRef, pin: usize, die: DieId) -> Point {
        let lib_cell = match inst {
            InstRef::Cell(c) => self.cells[c.index()].lib_cell,
            InstRef::Macro(m) => self.macros[m.index()].lib_cell,
        };
        self.lib_cell_on(lib_cell, die).pins[pin].offset
    }
}

/// Die specification consumed by [`DesignBuilder::die`].
#[derive(Debug, Clone, PartialEq)]
pub struct DieSpec {
    name: String,
    tech: String,
    outline: Rect,
    row_height: i64,
    site_width: i64,
    max_util: f64,
}

impl DieSpec {
    /// Creates a die spec. `outline` is `(xlo, ylo, xhi, yhi)`; `max_util`
    /// is a fraction in `(0, 1]`.
    pub fn new(
        name: impl Into<String>,
        tech: impl Into<String>,
        outline: (i64, i64, i64, i64),
        row_height: i64,
        site_width: i64,
        max_util: f64,
    ) -> Self {
        Self {
            name: name.into(),
            tech: tech.into(),
            outline: Rect::new(outline.0, outline.1, outline.2, outline.3),
            row_height,
            site_width,
            max_util,
        }
    }
}

/// Incrementally assembles and validates a [`Design`].
///
/// # Examples
///
/// See the [crate-level documentation](crate).
#[derive(Debug, Default)]
pub struct DesignBuilder {
    name: String,
    techs: Vec<TechnologySpec>,
    dies: Vec<DieSpec>,
    cells: Vec<(String, String)>,
    macros: Vec<(String, String, String, Point)>,
    nets: Vec<(String, Vec<(String, usize)>)>,
}

impl DesignBuilder {
    /// Starts a new design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a technology. The first technology defines the canonical lib
    /// cell ordering; later technologies must define the same cells in the
    /// same order.
    #[must_use]
    pub fn technology(mut self, spec: TechnologySpec) -> Self {
        self.techs.push(spec);
        self
    }

    /// Adds a die bound to a named technology. Dies are stacked in
    /// insertion order: the first die is [`DieId::BOTTOM`].
    #[must_use]
    pub fn die(mut self, spec: DieSpec) -> Self {
        self.dies.push(spec);
        self
    }

    /// Adds a movable standard-cell instance of the named library cell.
    #[must_use]
    pub fn cell(mut self, name: impl Into<String>, lib_cell: impl Into<String>) -> Self {
        self.cells.push((name.into(), lib_cell.into()));
        self
    }

    /// Adds a fixed macro instance on the named die at `(x, y)`.
    #[must_use]
    pub fn macro_inst(
        mut self,
        name: impl Into<String>,
        lib_cell: impl Into<String>,
        die: impl Into<String>,
        x: i64,
        y: i64,
    ) -> Self {
        self.macros
            .push((name.into(), lib_cell.into(), die.into(), Point::new(x, y)));
        self
    }

    /// Adds a net connecting `(instance, pin_index)` pairs.
    #[must_use]
    pub fn net(mut self, name: impl Into<String>, pins: &[(&str, usize)]) -> Self {
        self.nets.push((
            name.into(),
            pins.iter().map(|(i, p)| (i.to_string(), *p)).collect(),
        ));
        self
    }

    /// Validates all cross-references and produces the immutable [`Design`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] for duplicate or unknown names, misaligned
    /// technologies, invalid dies, out-of-range pins, or macros placed
    /// outside their die / overlapping each other.
    pub fn build(self) -> Result<Design, DbError> {
        if self.techs.is_empty() || self.dies.is_empty() {
            return Err(DbError::EmptyStack);
        }
        let techs = validate_techs(self.techs)?;
        let dies = validate_dies(self.dies, &techs)?;
        let canon = &techs[0];

        // Instances.
        let lib_cell_index = |name: &str| -> Result<LibCellId, DbError> {
            canon
                .lib_cell_index(name)
                .map(LibCellId::new)
                .ok_or_else(|| DbError::UnknownName {
                    kind: "lib cell",
                    name: name.to_string(),
                })
        };

        let mut cells = Vec::with_capacity(self.cells.len());
        let mut cell_names = BTreeMap::new();
        for (name, lc) in self.cells {
            let lib_cell = lib_cell_index(&lc)?;
            if canon.lib_cells[lib_cell.index()].is_macro() {
                return Err(DbError::InvalidMacro {
                    name,
                    detail: "macro lib cell used for a movable cell instance".into(),
                });
            }
            if cell_names
                .insert(name.clone(), CellId::new(cells.len()))
                .is_some()
            {
                return Err(DbError::DuplicateName { kind: "cell", name });
            }
            cells.push(CellInst { name, lib_cell });
        }

        let mut macros: Vec<MacroInst> = Vec::with_capacity(self.macros.len());
        let mut macro_names = BTreeMap::new();
        for (name, lc, die_name, pos) in self.macros {
            let lib_cell = lib_cell_index(&lc)?;
            if !canon.lib_cells[lib_cell.index()].is_macro() {
                return Err(DbError::InvalidMacro {
                    name,
                    detail: "standard lib cell used for a fixed macro instance".into(),
                });
            }
            let die_idx = dies
                .iter()
                .position(|d| d.name == die_name)
                .ok_or_else(|| DbError::UnknownName {
                    kind: "die",
                    name: die_name.clone(),
                })?;
            if cell_names.contains_key(&name)
                || macro_names
                    .insert(name.clone(), MacroId::new(macros.len()))
                    .is_some()
            {
                return Err(DbError::DuplicateName {
                    kind: "instance",
                    name,
                });
            }
            macros.push(MacroInst {
                name,
                lib_cell,
                die: DieId::new(die_idx),
                pos,
            });
        }

        validate_macro_placements(&macros, &dies, &techs)?;

        // Nets.
        let mut nets = Vec::with_capacity(self.nets.len());
        let mut net_names = BTreeMap::new();
        for (name, pins) in self.nets {
            let mut refs = Vec::with_capacity(pins.len());
            for (inst_name, pin) in pins {
                let (inst, lib_cell) = if let Some(&c) = cell_names.get(&inst_name) {
                    (InstRef::Cell(c), cells[c.index()].lib_cell)
                } else if let Some(&m) = macro_names.get(&inst_name) {
                    (InstRef::Macro(m), macros[m.index()].lib_cell)
                } else {
                    return Err(DbError::UnknownName {
                        kind: "instance",
                        name: inst_name,
                    });
                };
                if pin >= canon.lib_cells[lib_cell.index()].pins.len() {
                    return Err(DbError::InvalidPin {
                        inst: inst_name,
                        pin,
                    });
                }
                refs.push(PinRef { inst, pin });
            }
            if net_names
                .insert(name.clone(), NetId::new(nets.len()))
                .is_some()
            {
                return Err(DbError::DuplicateName { kind: "net", name });
            }
            nets.push(Net { name, pins: refs });
        }

        Ok(Design {
            name: self.name,
            techs,
            dies,
            cells,
            macros,
            nets,
            cell_names,
            macro_names,
            net_names,
        })
    }
}

/// Technologies: unique names, aligned lib cell tables.
fn validate_techs(specs: Vec<TechnologySpec>) -> Result<Vec<Technology>, DbError> {
    let mut techs = Vec::with_capacity(specs.len());
    for spec in specs {
        if techs.iter().any(|t: &Technology| t.name == spec.name) {
            return Err(DbError::DuplicateName {
                kind: "technology",
                name: spec.name,
            });
        }
        techs.push(Technology {
            name: spec.name,
            lib_cells: spec.lib_cells,
        });
    }
    let canon = &techs[0];
    for t in &techs[1..] {
        if t.lib_cells.len() != canon.lib_cells.len() {
            return Err(DbError::MisalignedTechnologies {
                tech: t.name.clone(),
                detail: format!(
                    "{} lib cells vs {} in `{}`",
                    t.lib_cells.len(),
                    canon.lib_cells.len(),
                    canon.name
                ),
            });
        }
        for (a, b) in t.lib_cells.iter().zip(&canon.lib_cells) {
            if a.name != b.name || a.kind != b.kind || a.pins.len() != b.pins.len() {
                return Err(DbError::MisalignedTechnologies {
                    tech: t.name.clone(),
                    detail: format!("lib cell `{}` does not match `{}`", a.name, b.name),
                });
            }
        }
    }
    Ok(techs)
}

/// Dies: unique names, known technologies, sane geometry and utilization.
fn validate_dies(specs: Vec<DieSpec>, techs: &[Technology]) -> Result<Vec<Die>, DbError> {
    let mut dies = Vec::with_capacity(specs.len());
    for spec in specs {
        if dies.iter().any(|d: &Die| d.name == spec.name) {
            return Err(DbError::DuplicateName {
                kind: "die",
                name: spec.name,
            });
        }
        let tech_idx = techs
            .iter()
            .position(|t| t.name == spec.tech)
            .ok_or_else(|| DbError::UnknownName {
                kind: "technology",
                name: spec.tech.clone(),
            })?;
        if spec.row_height <= 0 || spec.site_width <= 0 {
            return Err(DbError::InvalidDie {
                die: spec.name,
                detail: "non-positive row height or site width".into(),
            });
        }
        if !(spec.max_util > 0.0 && spec.max_util <= 1.0) {
            return Err(DbError::InvalidDie {
                die: spec.name,
                detail: format!("max_util {} outside (0, 1]", spec.max_util),
            });
        }
        dies.push(Die::with_uniform_rows(
            spec.name,
            TechId::new(tech_idx),
            spec.outline,
            spec.row_height,
            spec.site_width,
            spec.max_util,
        ));
    }
    Ok(dies)
}

/// Macro placement validity: inside die, pairwise disjoint per die.
fn validate_macro_placements(
    macros: &[MacroInst],
    dies: &[Die],
    techs: &[Technology],
) -> Result<(), DbError> {
    let rect_of = |m: &MacroInst| {
        let tech = dies[m.die.index()].tech;
        let lc = &techs[tech.index()].lib_cells[m.lib_cell.index()];
        Rect::with_size(m.pos, lc.width, lc.height)
    };
    for (i, m) in macros.iter().enumerate() {
        let r = rect_of(m);
        let die = &dies[m.die.index()];
        if !die.outline.contains_rect(&r) {
            return Err(DbError::InvalidMacro {
                name: m.name.clone(),
                detail: format!("footprint {r} outside die outline {}", die.outline),
            });
        }
        for other in &macros[..i] {
            if other.die == m.die && rect_of(other).overlaps(&r) {
                return Err(DbError::InvalidMacro {
                    name: m.name.clone(),
                    detail: format!("overlaps macro `{}`", other.name),
                });
            }
        }
    }
    Ok(())
}

/// Resolved, id-indexed construction input for [`Design::from_resolved`].
///
/// This is the handoff from a streaming parser that resolves names to
/// ids *while reading*: cell `i` (`CellId::new(i)`) has lib cell
/// `cell_libs[i]`, and `cell_names` is the finished name index that
/// becomes the design's own lookup map verbatim — no instance-scale
/// intermediate maps are rebuilt. Macros and nets arrive fully resolved
/// ([`MacroInst`] / [`Net`] carry ids, not names).
#[derive(Debug, Clone, Default)]
pub struct ResolvedCase {
    /// Design name.
    pub name: String,
    /// Technology specs, first one canonical.
    pub techs: Vec<TechnologySpec>,
    /// Die specs in stack order (first is [`DieId::BOTTOM`]).
    pub dies: Vec<DieSpec>,
    /// Lib cell of cell `i`, parallel to `cell_names`'s ids.
    pub cell_libs: Vec<LibCellId>,
    /// Instance name → cell id; must map onto `0..cell_libs.len()`
    /// bijectively.
    pub cell_names: BTreeMap<String, CellId>,
    /// Fixed macros in id order.
    pub macros: Vec<MacroInst>,
    /// Nets in id order, pins already resolved.
    pub nets: Vec<Net>,
}

impl Design {
    /// Builds a design from already-resolved parts, performing the same
    /// validation as [`DesignBuilder::build`] minus the name→id
    /// resolution the caller has done.
    ///
    /// # Errors
    ///
    /// Every [`DbError`] the builder raises, plus
    /// [`DbError::InvalidResolved`] when an id is out of range or the
    /// name index does not cover the cell list bijectively.
    pub fn from_resolved(parts: ResolvedCase) -> Result<Design, DbError> {
        if parts.techs.is_empty() || parts.dies.is_empty() {
            return Err(DbError::EmptyStack);
        }
        let techs = validate_techs(parts.techs)?;
        let dies = validate_dies(parts.dies, &techs)?;
        let canon = &techs[0];

        let check_lib = |id: LibCellId, owner: &dyn Fn() -> String| -> Result<(), DbError> {
            if id.index() >= canon.lib_cells.len() {
                return Err(DbError::InvalidResolved {
                    detail: format!("lib cell id {id} out of range for `{}`", owner()),
                });
            }
            Ok(())
        };

        // Cells: the name index must cover 0..n exactly once each, and
        // every lib id must name a standard (non-macro) cell.
        let n = parts.cell_libs.len();
        if parts.cell_names.len() != n {
            return Err(DbError::InvalidResolved {
                detail: format!("{} cell names for {} cells", parts.cell_names.len(), n),
            });
        }
        let mut names: Vec<Option<&String>> = vec![None; n];
        for (name, id) in &parts.cell_names {
            let slot = names
                .get_mut(id.index())
                .ok_or_else(|| DbError::InvalidResolved {
                    detail: format!("cell id {id} out of range for `{name}`"),
                })?;
            if slot.replace(name).is_some() {
                return Err(DbError::InvalidResolved {
                    detail: format!("cell id {id} mapped twice (`{name}`)"),
                });
            }
        }
        let mut cells = Vec::with_capacity(n);
        for (&lib_cell, slot) in parts.cell_libs.iter().zip(&names) {
            // flow3d-tidy: allow(panic-unwrap) — invariant: the map has n entries, every id in range and none repeated, so pigeonhole fills every slot
            let name = slot.expect("name index covers every cell id");
            check_lib(lib_cell, &|| name.clone())?;
            if canon.lib_cells[lib_cell.index()].is_macro() {
                return Err(DbError::InvalidMacro {
                    name: name.clone(),
                    detail: "macro lib cell used for a movable cell instance".into(),
                });
            }
            cells.push(CellInst {
                name: name.clone(),
                lib_cell,
            });
        }
        let cell_names = parts.cell_names;

        // Macros: unique instance names, macro-kind libs, known dies.
        let mut macro_names = BTreeMap::new();
        for (i, m) in parts.macros.iter().enumerate() {
            check_lib(m.lib_cell, &|| m.name.clone())?;
            if !canon.lib_cells[m.lib_cell.index()].is_macro() {
                return Err(DbError::InvalidMacro {
                    name: m.name.clone(),
                    detail: "standard lib cell used for a fixed macro instance".into(),
                });
            }
            if m.die.index() >= dies.len() {
                return Err(DbError::InvalidResolved {
                    detail: format!("die id {} out of range for `{}`", m.die, m.name),
                });
            }
            if cell_names.contains_key(&m.name)
                || macro_names
                    .insert(m.name.clone(), MacroId::new(i))
                    .is_some()
            {
                return Err(DbError::DuplicateName {
                    kind: "instance",
                    name: m.name.clone(),
                });
            }
        }
        let macros = parts.macros;
        validate_macro_placements(&macros, &dies, &techs)?;

        // Nets: unique names, in-range instance ids and pin indices.
        let mut net_names = BTreeMap::new();
        for (i, net) in parts.nets.iter().enumerate() {
            for pin in &net.pins {
                let (lib_cell, inst_name) = match pin.inst {
                    InstRef::Cell(c) => match cells.get(c.index()) {
                        Some(ci) => (ci.lib_cell, &ci.name),
                        None => {
                            return Err(DbError::InvalidResolved {
                                detail: format!("cell id {c} out of range in net `{}`", net.name),
                            })
                        }
                    },
                    InstRef::Macro(m) => match macros.get(m.index()) {
                        Some(mi) => (mi.lib_cell, &mi.name),
                        None => {
                            return Err(DbError::InvalidResolved {
                                detail: format!("macro id {m} out of range in net `{}`", net.name),
                            })
                        }
                    },
                };
                if pin.pin >= canon.lib_cells[lib_cell.index()].pins.len() {
                    return Err(DbError::InvalidPin {
                        inst: inst_name.clone(),
                        pin: pin.pin,
                    });
                }
            }
            if net_names.insert(net.name.clone(), NetId::new(i)).is_some() {
                return Err(DbError::DuplicateName {
                    kind: "net",
                    name: net.name.clone(),
                });
            }
        }
        let nets = parts.nets;

        Ok(Design {
            name: parts.name,
            techs,
            dies,
            cells,
            macros,
            nets,
            cell_names,
            macro_names,
            net_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::LibCellSpec;

    fn base_builder() -> DesignBuilder {
        DesignBuilder::new("t")
            .technology(
                TechnologySpec::new("TA")
                    .lib_cell(
                        LibCellSpec::std_cell("INV", 10, 12)
                            .pin("A", 0, 6)
                            .pin("Y", 9, 6),
                    )
                    .lib_cell(LibCellSpec::macro_cell("RAM", 200, 48).pin("D", 0, 0)),
            )
            .technology(
                TechnologySpec::new("TB")
                    .lib_cell(
                        LibCellSpec::std_cell("INV", 8, 10)
                            .pin("A", 0, 5)
                            .pin("Y", 7, 5),
                    )
                    .lib_cell(LibCellSpec::macro_cell("RAM", 160, 40).pin("D", 0, 0)),
            )
            .die(DieSpec::new("bottom", "TA", (0, 0, 1000, 120), 12, 1, 0.9))
            .die(DieSpec::new("top", "TB", (0, 0, 1000, 120), 10, 1, 0.8))
    }

    #[test]
    fn build_valid_design() {
        let d = base_builder()
            .cell("u1", "INV")
            .cell("u2", "INV")
            .macro_inst("ram0", "RAM", "bottom", 100, 0)
            .net("n1", &[("u1", 1), ("u2", 0), ("ram0", 0)])
            .build()
            .unwrap();
        assert_eq!(d.num_cells(), 2);
        assert_eq!(d.num_macros(), 1);
        assert_eq!(d.num_nets(), 1);
        let u1 = d.cell_by_name("u1").unwrap();
        assert_eq!(d.cell_width(u1, DieId::BOTTOM), 10);
        assert_eq!(d.cell_width(u1, DieId::TOP), 8);
        assert_eq!(d.cell_height(DieId::TOP), 10);
    }

    #[test]
    fn hetero_widths_differ_per_die() {
        let d = base_builder().cell("u1", "INV").build().unwrap();
        let u1 = d.cell_by_name("u1").unwrap();
        assert_ne!(
            d.cell_width(u1, DieId::BOTTOM),
            d.cell_width(u1, DieId::TOP)
        );
        assert!((d.avg_cell_width(DieId::BOTTOM) - 10.0).abs() < 1e-9);
        assert!((d.avg_cell_width(DieId::TOP) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn free_area_subtracts_macro_blockage() {
        let d = base_builder()
            .macro_inst("ram0", "RAM", "bottom", 100, 0)
            .build()
            .unwrap();
        // RAM on bottom is 200 x 48 covering rows 0..4 (height 48 = 4 rows).
        let rows_area = 1000 * 120;
        assert_eq!(d.free_area(DieId::BOTTOM), rows_area - 200 * 48);
        assert_eq!(d.free_area(DieId::TOP), 1000 * 120);
    }

    #[test]
    fn duplicate_cell_name_rejected() {
        let err = base_builder()
            .cell("u1", "INV")
            .cell("u1", "INV")
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::DuplicateName { kind: "cell", .. }));
    }

    #[test]
    fn unknown_lib_cell_rejected() {
        let err = base_builder().cell("u1", "NAND9").build().unwrap_err();
        assert!(matches!(
            err,
            DbError::UnknownName {
                kind: "lib cell",
                ..
            }
        ));
    }

    #[test]
    fn misaligned_technologies_rejected() {
        let err = DesignBuilder::new("t")
            .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("INV", 1, 1)))
            .technology(TechnologySpec::new("TB").lib_cell(LibCellSpec::std_cell("BUF", 1, 1)))
            .die(DieSpec::new("d", "TA", (0, 0, 10, 10), 1, 1, 1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::MisalignedTechnologies { .. }));
    }

    #[test]
    fn macro_outside_die_rejected() {
        let err = base_builder()
            .macro_inst("ram0", "RAM", "bottom", 900, 0)
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidMacro { .. }));
    }

    #[test]
    fn overlapping_macros_rejected() {
        let err = base_builder()
            .macro_inst("ram0", "RAM", "bottom", 0, 0)
            .macro_inst("ram1", "RAM", "bottom", 100, 24)
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidMacro { .. }));
    }

    #[test]
    fn macro_as_cell_rejected() {
        let err = base_builder().cell("u1", "RAM").build().unwrap_err();
        assert!(matches!(err, DbError::InvalidMacro { .. }));
    }

    #[test]
    fn net_with_bad_pin_rejected() {
        let err = base_builder()
            .cell("u1", "INV")
            .net("n1", &[("u1", 5)])
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidPin { .. }));
    }

    #[test]
    fn net_with_unknown_instance_rejected() {
        let err = base_builder()
            .net("n1", &[("nope", 0)])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            DbError::UnknownName {
                kind: "instance",
                ..
            }
        ));
    }

    #[test]
    fn empty_stack_rejected() {
        assert_eq!(
            DesignBuilder::new("x").build().unwrap_err(),
            DbError::EmptyStack
        );
    }

    #[test]
    fn invalid_util_rejected() {
        let err = DesignBuilder::new("t")
            .technology(TechnologySpec::new("TA").lib_cell(LibCellSpec::std_cell("INV", 1, 1)))
            .die(DieSpec::new("d", "TA", (0, 0, 10, 10), 1, 1, 1.5))
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidDie { .. }));
    }

    #[test]
    fn pin_offset_depends_on_die() {
        let d = base_builder().cell("u1", "INV").build().unwrap();
        let u1 = d.cell_by_name("u1").unwrap();
        assert_eq!(
            d.pin_offset(InstRef::Cell(u1), 1, DieId::BOTTOM),
            Point::new(9, 6)
        );
        assert_eq!(
            d.pin_offset(InstRef::Cell(u1), 1, DieId::TOP),
            Point::new(7, 5)
        );
    }
}
