//! Error type for design-database construction and validation.

use std::error::Error;
use std::fmt;

/// An error raised while building or validating a [`Design`](crate::Design).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbError {
    /// A name (instance, net, lib cell, technology, die) was defined twice.
    DuplicateName {
        /// Kind of entity ("cell", "net", ...).
        kind: &'static str,
        /// The offending name.
        name: String,
    },
    /// A reference to an undefined name.
    UnknownName {
        /// Kind of entity ("lib cell", "instance", ...).
        kind: &'static str,
        /// The unresolved name.
        name: String,
    },
    /// The technologies do not define the same library cells in the same
    /// order; heterogeneous widths require aligned tables.
    MisalignedTechnologies {
        /// Name of the mismatching technology.
        tech: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// A die references rows or geometry that are inconsistent (e.g. a row
    /// outside the outline, or a non-positive row height).
    InvalidDie {
        /// Name of the die.
        die: String,
        /// Explanation of the problem.
        detail: String,
    },
    /// A pin index is out of range for the instance's library cell.
    InvalidPin {
        /// Instance name.
        inst: String,
        /// The out-of-range pin index.
        pin: usize,
    },
    /// A macro is placed outside its die or overlapping another macro.
    InvalidMacro {
        /// Macro instance name.
        name: String,
        /// Explanation of the problem.
        detail: String,
    },
    /// The design has no dies or no technologies.
    EmptyStack,
    /// Pre-resolved construction input
    /// ([`ResolvedCase`](crate::ResolvedCase)) is internally
    /// inconsistent: an id out of range, or a name index that does not
    /// cover its id space bijectively.
    InvalidResolved {
        /// Explanation of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            DbError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} `{name}`")
            }
            DbError::MisalignedTechnologies { tech, detail } => {
                write!(
                    f,
                    "technology `{tech}` misaligned with the first technology: {detail}"
                )
            }
            DbError::InvalidDie { die, detail } => {
                write!(f, "invalid die `{die}`: {detail}")
            }
            DbError::InvalidPin { inst, pin } => {
                write!(f, "pin index {pin} out of range for instance `{inst}`")
            }
            DbError::InvalidMacro { name, detail } => {
                write!(f, "invalid macro `{name}`: {detail}")
            }
            DbError::EmptyStack => write!(f, "design has no dies or no technologies"),
            DbError::InvalidResolved { detail } => {
                write!(f, "inconsistent resolved design parts: {detail}")
            }
        }
    }
}

impl Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DbError::UnknownName {
            kind: "lib cell",
            name: "INVX1".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("INVX1"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DbError>();
    }
}
