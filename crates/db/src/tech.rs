//! Technologies and library cells.
//!
//! In heterogeneous F2F integration the two dies may be fabricated in
//! different technology nodes, so the *same* library cell has different
//! physical dimensions depending on the die it is placed on. We model this
//! as one [`Technology`] per node, each holding a `lib_cells` table aligned
//! by [`LibCellId`](crate::LibCellId): `techs[t].lib_cells[lc]` is the
//! incarnation of lib cell `lc` in technology `t`.

use flow3d_geom::Point;

/// Whether a library cell is a movable standard cell or a fixed macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
// flow3d-tidy: allow(dead-pub) — design-database model type, part of the flow3d::db facade surface
pub enum LibCellKind {
    /// A standard cell: one row tall, movable by the legalizer.
    #[default]
    StdCell,
    /// A macro: fixed blockage spanning multiple rows.
    Macro,
}

/// A pin of a library cell, with its offset from the cell's lower-left
/// corner.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
// flow3d-tidy: allow(dead-pub) — design-database model type, part of the flow3d::db facade surface
pub struct PinDef {
    /// Pin name, unique within the cell.
    pub name: String,
    /// Offset from the instance's lower-left corner, in DBU.
    pub offset: Point,
}

impl PinDef {
    /// Creates a pin definition.
    pub fn new(name: impl Into<String>, offset: Point) -> Self {
        Self {
            name: name.into(),
            offset,
        }
    }
}

/// One library cell as characterized in one technology.
#[derive(Debug, Clone, PartialEq, Eq)]
// flow3d-tidy: allow(dead-pub) — design-database model type, part of the flow3d::db facade surface
pub struct LibCell {
    /// Cell name; identical across technologies for the same
    /// [`LibCellId`](crate::LibCellId).
    pub name: String,
    /// Footprint width in DBU. For standard cells this is the paper's
    /// `w_c^+` (top-die tech) or `w_c^-` (bottom-die tech).
    pub width: i64,
    /// Footprint height in DBU; equals the row height for standard cells.
    pub height: i64,
    /// Standard cell or macro.
    pub kind: LibCellKind,
    /// Pin definitions, indexed by pin index.
    pub pins: Vec<PinDef>,
}

impl LibCell {
    /// `true` if this is a fixed macro.
    #[inline]
    pub fn is_macro(&self) -> bool {
        self.kind == LibCellKind::Macro
    }

    /// Looks up a pin index by name.
    pub fn pin_index(&self, name: &str) -> Option<usize> {
        self.pins.iter().position(|p| p.name == name)
    }

    /// Footprint area in DBU².
    #[inline]
    pub fn area(&self) -> i64 {
        self.width * self.height
    }
}

/// A library characterized for one technology node.
#[derive(Debug, Clone, PartialEq, Eq)]
// flow3d-tidy: allow(dead-pub) — design-database model type, part of the flow3d::db facade surface
pub struct Technology {
    /// Technology name (e.g. `"N16"`).
    pub name: String,
    /// Library cells, aligned by [`LibCellId`](crate::LibCellId) across all
    /// technologies of a design.
    pub lib_cells: Vec<LibCell>,
}

impl Technology {
    /// Looks up a library cell index by name.
    pub fn lib_cell_index(&self, name: &str) -> Option<usize> {
        self.lib_cells.iter().position(|lc| lc.name == name)
    }
}

/// Builder-style specification of a technology, consumed by
/// [`DesignBuilder`](crate::DesignBuilder).
///
/// # Examples
///
/// ```
/// use flow3d_db::{LibCellSpec, TechnologySpec};
/// let tech = TechnologySpec::new("N7")
///     .lib_cell(LibCellSpec::std_cell("INV", 8, 12))
///     .lib_cell(LibCellSpec::std_cell("NAND2", 12, 12).pin("A", 1, 6).pin("B", 5, 6).pin("Y", 10, 6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TechnologySpec {
    pub(crate) name: String,
    pub(crate) lib_cells: Vec<LibCell>,
}

impl TechnologySpec {
    /// Starts a technology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            lib_cells: Vec::new(),
        }
    }

    /// Adds a library cell.
    #[must_use]
    pub fn lib_cell(mut self, spec: LibCellSpec) -> Self {
        self.lib_cells.push(spec.into_lib_cell());
        self
    }
}

/// Builder-style specification of a library cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibCellSpec {
    cell: LibCell,
}

impl LibCellSpec {
    /// Starts a standard-cell specification of the given footprint.
    pub fn std_cell(name: impl Into<String>, width: i64, height: i64) -> Self {
        Self {
            cell: LibCell {
                name: name.into(),
                width,
                height,
                kind: LibCellKind::StdCell,
                pins: Vec::new(),
            },
        }
    }

    /// Starts a macro specification of the given footprint.
    pub fn macro_cell(name: impl Into<String>, width: i64, height: i64) -> Self {
        Self {
            cell: LibCell {
                name: name.into(),
                width,
                height,
                kind: LibCellKind::Macro,
                pins: Vec::new(),
            },
        }
    }

    /// Adds a pin at `(dx, dy)` from the lower-left corner.
    #[must_use]
    pub fn pin(mut self, name: impl Into<String>, dx: i64, dy: i64) -> Self {
        self.cell.pins.push(PinDef::new(name, Point::new(dx, dy)));
        self
    }

    /// Finishes the specification.
    pub(crate) fn into_lib_cell(self) -> LibCell {
        self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib_cell_spec_builds_std_cell_with_pins() {
        let lc = LibCellSpec::std_cell("NAND2", 12, 12)
            .pin("A", 1, 6)
            .pin("Y", 10, 6)
            .into_lib_cell();
        assert_eq!(lc.name, "NAND2");
        assert!(!lc.is_macro());
        assert_eq!(lc.pin_index("Y"), Some(1));
        assert_eq!(lc.pin_index("Z"), None);
        assert_eq!(lc.area(), 144);
    }

    #[test]
    fn macro_spec_sets_kind() {
        let lc = LibCellSpec::macro_cell("RAM", 500, 300).into_lib_cell();
        assert!(lc.is_macro());
    }

    #[test]
    fn technology_lookup_by_name() {
        let t = TechnologySpec::new("N7")
            .lib_cell(LibCellSpec::std_cell("A", 1, 2))
            .lib_cell(LibCellSpec::std_cell("B", 3, 2));
        let tech = Technology {
            name: t.name,
            lib_cells: t.lib_cells,
        };
        assert_eq!(tech.lib_cell_index("B"), Some(1));
        assert_eq!(tech.lib_cell_index("C"), None);
    }
}
