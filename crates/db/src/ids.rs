//! Typed index handles into the design database.
//!
//! Every entity in a [`Design`](crate::Design) is addressed by a small
//! newtype around `u32`. The newtypes prevent, at compile time, mixing a
//! cell index with a net index or a die index (C-NEWTYPE).

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            pub fn new(index: usize) -> Self {
                // flow3d-tidy: allow(panic-unwrap) — documented # Panics: id overflow is a capacity bug, not recoverable
                Self(u32::try_from(index).expect(concat!($tag, " id overflow")))
            }

            /// The raw index, for slice addressing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }
    };
}

define_id!(
    /// Identifies a standard-cell instance within a design.
    CellId,
    "c"
);
define_id!(
    /// Identifies a fixed macro instance within a design.
    MacroId,
    "m"
);
define_id!(
    /// Identifies a net within a design.
    NetId,
    "n"
);
define_id!(
    /// Identifies a library cell; the same id indexes the aligned
    /// `lib_cells` tables of every technology.
    LibCellId,
    "lc"
);
define_id!(
    /// Identifies a technology (a library characterized for one die).
    TechId,
    "t"
);
define_id!(
    /// Identifies a row within one die (local to the die).
    RowId,
    "r"
);
define_id!(
    /// Identifies a macro-free segment of a row within a
    /// [`RowLayout`](crate::RowLayout).
    SegmentId,
    "s"
);

/// Identifies a die in the 3D stack. Die 0 is the bottom die; in the
/// two-die F2F setting die 1 is the top die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DieId(pub u8);

impl DieId {
    /// The bottom die of an F2F stack.
    pub const BOTTOM: DieId = DieId(0);
    /// The top die of a two-die F2F stack.
    pub const TOP: DieId = DieId(1);

    /// Creates a die id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u8::MAX` (no realistic stack comes close).
    #[inline]
    pub fn new(index: usize) -> Self {
        // flow3d-tidy: allow(panic-unwrap) — documented # Panics: no realistic 3D stack exceeds u8::MAX dies
        Self(u8::try_from(index).expect("die id overflow"))
    }

    /// The raw index, for slice addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DieId::BOTTOM => write!(f, "bottom"),
            DieId::TOP => write!(f, "top"),
            DieId(n) => write!(f, "die{n}"),
        }
    }
}

impl From<usize> for DieId {
    #[inline]
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(CellId::new(42).index(), 42);
        assert_eq!(NetId::from(7usize).index(), 7);
        assert_eq!(DieId::new(1), DieId::TOP);
    }

    #[test]
    fn display_is_nonempty_and_tagged() {
        assert_eq!(CellId::new(3).to_string(), "c3");
        assert_eq!(DieId::BOTTOM.to_string(), "bottom");
        assert_eq!(DieId(4).to_string(), "die4");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert!(DieId::BOTTOM < DieId::TOP);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn die_id_overflow_panics() {
        let _ = DieId::new(300);
    }
}
