#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Std-only deterministic fork-join parallelism for the 3D-Flow workspace.
//!
//! The build environment has no registry access, so this crate provides
//! the minimal worker-pool primitive the legalizer needs on top of
//! [`std::thread::scope`] alone: an indexed parallel map whose output is
//! a pure function of the input — **independent of the thread count and
//! of how the scheduler interleaves the workers**.
//!
//! # Determinism contract
//!
//! [`par_map`] (and [`par_map_with`]) evaluate `f(i)` for every index
//! `i in 0..len` and return the results **in index order**. Work is
//! distributed dynamically (an atomic claim counter, so an unlucky slow
//! item does not stall a statically-chunked neighbour), but since each
//! item's result depends only on its index, the assembled output vector
//! is identical for 1, 2, or 64 threads. Callers that need a
//! deterministic *reduction* over the results apply it to the returned
//! vector in index order — see `flow3d_core::driver::flow_pass_threaded`
//! for the canonical example.
//!
//! # Thread-count resolution
//!
//! [`resolve_threads`] turns a configuration knob into a concrete pool
//! size: an explicit positive value wins, otherwise the `FLOW3D_THREADS`
//! environment variable, otherwise [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// The environment variable consulted by [`resolve_threads`] when no
/// explicit thread count is configured.
// flow3d-tidy: allow(dead-pub) — worker-pool tuning surface (flow3d::par) for embedders
pub const THREADS_ENV: &str = "FLOW3D_THREADS";

/// Number of hardware threads, with a fallback of 1 when the platform
/// cannot report it.
// flow3d-tidy: allow(dead-pub) — worker-pool tuning surface (flow3d::par) for embedders
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a requested worker count to a concrete pool size.
///
/// * `requested > 0` — taken verbatim (an explicit `--threads`/config
///   value overrides everything).
/// * `requested == 0` — the `FLOW3D_THREADS` environment variable if it
///   parses to a positive integer, else [`available`].
///
/// The result is always at least 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available()
}

/// Maps `f` over `0..len` on up to `threads` scoped workers and returns
/// the results in index order (see the crate docs for the determinism
/// contract).
///
/// `threads <= 1`, `len <= 1`, or a single effective worker all take the
/// inline path — no thread is spawned, so cheap call sites pay nothing.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once the scope joins.
pub fn par_map<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (results, _) = par_map_with(threads, len, || (), |(), i| f(i));
    results
}

/// [`par_map`] with worker-local scratch state: every worker calls
/// `init()` once and threads the value through all the items it claims
/// (epoch-reset search scratch, per-worker profiles, …).
///
/// Returns `(results, worker_states)`. `results[i] == f(_, i)` in index
/// order, exactly as [`par_map`]. `worker_states` holds one entry per
/// worker that ran, in worker order; **which items each worker processed
/// is scheduling-dependent**, so only order-insensitive aggregates of
/// the states (counter sums, merged profiles) are deterministic.
///
/// # Panics
///
/// A panic inside `init` or `f` propagates to the caller once the scope
/// joins.
pub fn par_map_with<S, T, FI, F>(threads: usize, len: usize, init: FI, f: F) -> (Vec<T>, Vec<S>)
where
    S: Send,
    T: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut pool: Vec<()> = Vec::new();
    par_map_with_pool(
        threads,
        len,
        &mut pool,
        || (),
        init,
        |(), state, i| f(state, i),
    )
}

/// [`par_map_with`] with an additional caller-owned **pool** of worker
/// resources that persists across calls.
///
/// Each worker borrows one `&mut P` slot from `pool` for the duration of
/// the call (the pool is grown with `mk_pool` up to the effective worker
/// count first), while `init()` still produces a fresh per-call state
/// `S`. This splits worker-local data by lifetime: amortized scratch
/// that should keep its allocations across many calls (search arenas,
/// heaps, memo tables) goes in the pool; data that must start fresh
/// every call (per-round worker profiles, which would otherwise be
/// merged twice) stays in `S`.
///
/// Which pool slot serves which items is scheduling-dependent, so pooled
/// resources must never influence results — only carry reusable
/// capacity. The determinism contract on the returned `(results,
/// worker_states)` is exactly [`par_map_with`]'s.
///
/// # Panics
///
/// A panic inside `init` or `f` propagates to the caller once the scope
/// joins.
pub fn par_map_with_pool<P, S, T, FP, FI, F>(
    threads: usize,
    len: usize,
    pool: &mut Vec<P>,
    mk_pool: FP,
    init: FI,
    f: F,
) -> (Vec<T>, Vec<S>)
where
    P: Send,
    S: Send,
    T: Send,
    FP: Fn() -> P,
    FI: Fn() -> S + Sync,
    F: Fn(&mut P, &mut S, usize) -> T + Sync,
{
    let workers = threads.max(1).min(len);
    while pool.len() < workers.max(1) {
        pool.push(mk_pool());
    }
    if workers <= 1 {
        let mut state = init();
        let slot = &mut pool[0];
        let results = (0..len).map(|i| f(slot, &mut state, i)).collect();
        return (results, vec![state]);
    }

    let next = AtomicUsize::new(0);
    let next_ref = &next;
    let f_ref = &f;
    let init_ref = &init;
    let mut collected: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
    let mut states: Vec<S> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pool
            .iter_mut()
            .take(workers)
            .map(|slot| {
                scope.spawn(move || {
                    let mut state = init_ref();
                    let mut out = Vec::new();
                    loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        out.push((i, f_ref(slot, &mut state, i)));
                    }
                    (out, state)
                })
            })
            .collect();
        for h in handles {
            // join() only errs if the worker panicked; resume the panic
            // on the caller's thread.
            match h.join() {
                Ok((out, state)) => {
                    collected.push(out);
                    states.push(state);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Reassemble in index order: scheduling decided who computed what,
    // the indices decide where it goes.
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for out in collected {
        for (i, v) in out {
            slots[i] = Some(v);
        }
    }
    let results = slots
        .into_iter()
        // flow3d-tidy: allow(panic-unwrap) — invariant: workers claim disjoint index sets that cover 0..len
        .map(|s| s.expect("every index claimed exactly once"))
        .collect();
    (results, states)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8, 33] {
            let out = par_map(threads, 100, |i| i * i);
            assert_eq!(
                out,
                (0..100).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_and_tiny_lengths() {
        assert!(par_map(8, 0, |i| i).is_empty());
        assert_eq!(par_map(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = par_map(64, 3, |i| format!("x{i}"));
        assert_eq!(out, ["x0", "x1", "x2"]);
    }

    #[test]
    fn worker_states_cover_all_items() {
        // Each worker counts the items it claimed; the total must be the
        // input length regardless of how the claims were distributed.
        for threads in [1, 4] {
            let (out, states) = par_map_with(
                threads,
                57,
                || 0usize,
                |count, i| {
                    *count += 1;
                    i
                },
            );
            assert_eq!(out.len(), 57);
            assert_eq!(states.iter().sum::<usize>(), 57);
            assert!(states.len() <= threads.max(1));
        }
    }

    #[test]
    fn parallel_equals_serial_for_stateful_pure_work() {
        let work = |_: &mut (), i: usize| (0..i).fold(0u64, |a, b| a.wrapping_add(b as u64 * 7));
        let (serial, _) = par_map_with(1, 200, || (), work);
        let (parallel, _) = par_map_with(7, 200, || (), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn explicit_request_wins_resolution() {
        assert_eq!(resolve_threads(5), 5);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn env_override_is_consulted() {
        // This is the only test in the binary that mutates the variable,
        // and resolve_threads(0) is not called concurrently elsewhere.
        let saved = std::env::var(THREADS_ENV).ok();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(resolve_threads(0), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(resolve_threads(0) >= 1); // falls back to hardware count
        std::env::set_var(THREADS_ENV, "7");
        assert_eq!(resolve_threads(4), 4); // explicit beats env
        match saved {
            Some(v) => std::env::set_var(THREADS_ENV, v),
            None => std::env::remove_var(THREADS_ENV),
        }
    }

    #[test]
    fn pool_persists_and_grows_across_calls() {
        let mut pool: Vec<Vec<usize>> = Vec::new();
        // Serial call seeds exactly one slot and reuses it per item.
        let (out, states) = par_map_with_pool(
            1,
            3,
            &mut pool,
            Vec::new,
            || (),
            |p, (), i| {
                p.push(i);
                p.len()
            },
        );
        assert_eq!(pool.len(), 1);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(states.len(), 1);
        // A wider call grows the pool to the worker count but keeps the
        // capacity (here: contents) accumulated by the existing slot.
        par_map_with_pool(4, 8, &mut pool, Vec::new, || (), |p, (), i| p.push(i));
        assert_eq!(pool.len(), 4);
        let total: usize = pool.iter().map(Vec::len).sum();
        assert_eq!(total, 3 + 8, "old slot contents survive, 8 new claims");
    }

    #[test]
    fn pool_zero_length_matches_par_map_with() {
        let mut pool: Vec<u32> = Vec::new();
        let (out, states) = par_map_with_pool(8, 0, &mut pool, || 0, || 41, |_, s, i| *s + i);
        assert!(out.is_empty());
        assert_eq!(states, vec![41], "len==0 still yields one init() state");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn pooled_results_match_unpooled_for_pure_work() {
        let work = |i: usize| (0..i).fold(1u64, |a, b| a.wrapping_mul(b as u64 | 1));
        let (plain, _) = par_map_with(6, 150, || (), |(), i| work(i));
        let mut pool: Vec<[u64; 4]> = Vec::new();
        let (pooled, _) =
            par_map_with_pool(6, 150, &mut pool, || [0u64; 4], || (), |_, (), i| work(i));
        assert_eq!(plain, pooled);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        par_map(4, 16, |i| {
            if i == 9 {
                panic!("worker boom");
            }
            i
        });
    }
}
