//! Cross-checks on uniform-cell-width designs, where the paper notes the
//! legalization problem degenerates to a polynomial min-cost flow
//! (§III-A). The generic `flow3d-mcmf` solver provides the reference
//! optimum for hand-sized instances.

use flow3d::db::{CellId, DesignBuilder, DieId, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d::prelude::*;
use flow3d_geom::FPoint;
use flow3d_mcmf::FlowNetwork;

/// Single row, uniform cells, all anchored at x = 0. The optimal
/// legalization packs them left: positions 0, w, 2w, ... with total
/// displacement w·n·(n−1)/2.
#[test]
fn packed_row_matches_closed_form_optimum() {
    let (n, w) = (5usize, 30i64);
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", w, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 200, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 200, 10), 10, 1, 1.0));
    for i in 0..n {
        b = b.cell(format!("u{i}"), "C");
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(n); // everything at (0, 0), bottom die

    // Keep the comparison to the flow phase itself (no D2D: the planar
    // optimum is what the closed form describes).
    let outcome = Flow3dLegalizer::new(Flow3dConfig::without_d2d())
        .legalize(&design, &global)
        .unwrap();
    assert!(check_legal(&design, &outcome.placement).is_legal());
    let total: i64 = (0..n)
        .map(|i| {
            let c = CellId::new(i);
            let p = outcome.placement.pos(c);
            p.x.abs() + p.y.abs()
        })
        .sum();
    let optimum = w * (n as i64) * (n as i64 - 1) / 2;
    assert_eq!(total, optimum, "3D-Flow missed the packing optimum");
}

/// The same instance expressed as a transportation problem and solved by
/// the generic min-cost flow: assigning 5 unit supplies at x=0 to slots
/// at 0, 30, 60, 90, 120 costs exactly the closed form too.
#[test]
fn mcmf_reference_agrees_with_closed_form() {
    let (n, w) = (5usize, 30i64);
    // Node 0: source. Nodes 1..=5: slots. Node 6: sink.
    let mut net = FlowNetwork::new(n + 2);
    for slot in 0..n {
        let cost = w * slot as i64; // |slot·w − 0|
        net.add_edge(0, 1 + slot, 1, cost).unwrap();
        net.add_edge(1 + slot, n + 1, 1, 0).unwrap();
    }
    // All n cells flow from the source.
    let result = net.min_cost_flow(0, n + 1, n as i64).unwrap();
    assert_eq!(result.flow, n as i64);
    assert_eq!(result.cost, w * (n as i64) * (n as i64 - 1) / 2);
    assert!(!net.residual_has_negative_cycle());
}

/// Two clumps, one per die, with room on both: no legalizer should move
/// anything across dies, and displacement should be identical for the
/// flow methods and the greedy ones (the instance is separable).
#[test]
fn separable_instance_all_legalizers_agree() {
    let (n, w) = (4usize, 20i64);
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", w, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 400, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 400, 10), 10, 1, 1.0));
    for i in 0..2 * n {
        b = b.cell(format!("u{i}"), "C");
    }
    let design = b.build().unwrap();
    let mut global = Placement3d::new(2 * n);
    for i in 0..2 * n {
        let c = CellId::new(i);
        global.set_pos(c, FPoint::new(100.0, 0.0));
        global.set_die_affinity(c, if i < n { 0.0 } else { 1.0 });
    }

    let all: Vec<Box<dyn flow3d_core::Legalizer>> = vec![
        Box::new(TetrisLegalizer::default()),
        Box::new(AbacusLegalizer::default()),
        Box::new(BonnLegalizer::default()),
        Box::new(Flow3dLegalizer::default()),
    ];
    let mut totals = Vec::new();
    for lg in &all {
        let outcome = lg.legalize(&design, &global).unwrap();
        assert!(check_legal(&design, &outcome.placement).is_legal());
        for i in 0..2 * n {
            let c = CellId::new(i);
            let expected = if i < n { DieId::BOTTOM } else { DieId::TOP };
            assert_eq!(outcome.placement.die(c), expected, "{}", lg.name());
        }
        let stats = displacement_stats(&design, &global, &outcome.placement);
        totals.push(stats.avg);
    }
    // 4 uniform cells clumped at one point in a wide row: every sane
    // legalizer reaches the same quadratic-optimal spread.
    for t in &totals {
        assert!((t - totals[0]).abs() < 1e-9, "{totals:?}");
    }
}
