//! Property-based end-to-end tests: on arbitrary feasible inputs, every
//! legalizer either returns a *legal* placement or a typed error — never
//! an illegal placement, never a panic — and 3D-Flow is deterministic.

use flow3d::core::{CellMove, EcoEngine};
use flow3d::db::{DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d::prelude::*;
use flow3d_geom::FPoint;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A random design plus global placement: up to 40 cells with widths
/// 10–50 on two 400x40 dies, anchored anywhere (including outside the
/// outline — legalizers must clamp).
fn arb_instance() -> impl Strategy<Value = (Vec<i64>, Vec<(f64, f64, f64)>)> {
    (1usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(1i64..=5, n),
            proptest::collection::vec((-50.0f64..450.0, -20.0f64..60.0, 0.0f64..1.0), n),
        )
    })
}

fn build(widths: &[i64], anchors: &[(f64, f64, f64)]) -> (flow3d::db::Design, Placement3d) {
    let mut b = DesignBuilder::new("prop")
        .technology(
            TechnologySpec::new("TA")
                .lib_cell(LibCellSpec::std_cell("C1", 10, 10))
                .lib_cell(LibCellSpec::std_cell("C2", 20, 10))
                .lib_cell(LibCellSpec::std_cell("C3", 30, 10))
                .lib_cell(LibCellSpec::std_cell("C4", 40, 10))
                .lib_cell(LibCellSpec::std_cell("C5", 50, 10)),
        )
        .technology(
            TechnologySpec::new("TB")
                .lib_cell(LibCellSpec::std_cell("C1", 12, 8))
                .lib_cell(LibCellSpec::std_cell("C2", 24, 8))
                .lib_cell(LibCellSpec::std_cell("C3", 36, 8))
                .lib_cell(LibCellSpec::std_cell("C4", 48, 8))
                .lib_cell(LibCellSpec::std_cell("C5", 60, 8)),
        )
        .die(DieSpec::new("bottom", "TA", (0, 0, 400, 40), 10, 2, 0.95))
        .die(DieSpec::new("top", "TB", (0, 0, 400, 40), 8, 2, 0.95));
    for (i, &w) in widths.iter().enumerate() {
        b = b.cell(format!("u{i}"), format!("C{w}"));
    }
    let design = b.build().unwrap();
    let mut gp = Placement3d::new(widths.len());
    for (i, &(x, y, z)) in anchors.iter().enumerate() {
        let c = flow3d::db::CellId::new(i);
        gp.set_pos(c, FPoint::new(x, y));
        gp.set_die_affinity(c, z);
    }
    (design, gp)
}

/// Shared resident-engine case: 12 cells on two dies, base legalized
/// once. Computed lazily so the proptest cases pay for it a single time.
fn eco_case() -> &'static (flow3d::db::Design, LegalPlacement) {
    static CASE: OnceLock<(flow3d::db::Design, LegalPlacement)> = OnceLock::new();
    CASE.get_or_init(|| {
        let mut b = DesignBuilder::new("eco-prop")
            .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
            .die(DieSpec::new("bottom", "T", (0, 0, 400, 40), 10, 1, 1.0))
            .die(DieSpec::new("top", "T", (0, 0, 400, 40), 10, 1, 1.0));
        for i in 0..12 {
            b = b.cell(format!("u{i}"), "C");
        }
        let design = b.build().unwrap();
        let mut gp = Placement3d::new(12);
        for i in 0..12 {
            gp.set_pos(
                CellId::new(i),
                FPoint::new((i as f64 * 35.0) % 350.0, 10.0 * ((i / 10) as f64)),
            );
        }
        let base = Flow3dLegalizer::default()
            .legalize(&design, &gp)
            .unwrap()
            .placement;
        (design, base)
    })
}

/// Builds batch `k`'s moves from its generated `(mask, onto, flip)`.
/// Batch `k` only ever moves cells `4k..4k+4`, so the three batches of
/// one case are disjoint by construction.
fn batch_moves(k: usize, mask: u8, onto: usize, flip: bool, base: &LegalPlacement) -> Vec<CellMove> {
    let onto = CellId::new(onto);
    (0..4)
        .filter(|bit| mask & (1 << bit) != 0)
        .map(|bit| {
            let die = if flip {
                DieId::new(1 - base.die(onto).index())
            } else {
                base.die(onto)
            };
            CellMove {
                cell: CellId::new(4 * k + bit),
                target: base.pos(onto),
                die: Some(die),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn legalizers_never_emit_illegal_placements(
        (widths, anchors) in arb_instance()
    ) {
        let (design, gp) = build(&widths, &anchors);
        let legalizers: Vec<Box<dyn flow3d_core::Legalizer>> = vec![
            Box::new(TetrisLegalizer::default()),
            Box::new(AbacusLegalizer::default()),
            Box::new(BonnLegalizer::default()),
            Box::new(Flow3dLegalizer::default()),
        ];
        for lg in &legalizers {
            // A typed rejection is acceptable; success must be legal.
            if let Ok(outcome) = lg.legalize(&design, &gp) {
                let report = check_legal(&design, &outcome.placement);
                prop_assert!(report.is_legal(), "{}: {report}", lg.name());
            }
        }
    }

    #[test]
    fn flow3d_is_deterministic_on_random_inputs(
        (widths, anchors) in arb_instance()
    ) {
        let (design, gp) = build(&widths, &anchors);
        let lg = Flow3dLegalizer::default();
        let a = lg.legalize(&design, &gp);
        let b = lg.legalize(&design, &gp);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.placement, y.placement),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "nondeterministic success/failure"),
        }
    }

    #[test]
    fn flow3d_beats_or_matches_its_2d_restriction_on_max_disp(
        (widths, anchors) in arb_instance()
    ) {
        let (design, gp) = build(&widths, &anchors);
        let with = Flow3dLegalizer::default().legalize(&design, &gp);
        let without = Flow3dLegalizer::new(Flow3dConfig::without_d2d()).legalize(&design, &gp);
        if let (Ok(a), Ok(b)) = (with, without) {
            let sa = displacement_stats(&design, &gp, &a.placement);
            let sb = displacement_stats(&design, &gp, &b.placement);
            // 3D moves are heuristic per-case; across the board they must
            // not blow up displacement. Allow generous slack — this guards
            // against regressions like the unclamped Eq. 7 flood.
            prop_assert!(
                sa.avg <= sb.avg * 1.5 + 1.0,
                "3D much worse than 2D: {} vs {}",
                sa.avg,
                sb.avg
            );
        }
    }

    /// The warm-cache generality contract: a resident engine serving a
    /// sequence of *disjoint* ECO batches — nothing in common between
    /// requests, so nothing can be answered by exact replay — returns
    /// placements bit-identical to a cold one-shot `legalize_incremental`
    /// for every batch, at 1 worker thread and at 8.
    #[test]
    fn warm_eco_over_disjoint_batches_matches_cold_engine(
        batches in proptest::collection::vec(
            (0u8..16, 0usize..12, any::<bool>()), 3)
    ) {
        let (design, base) = eco_case();
        let cold = Flow3dLegalizer::default();
        for threads in [1usize, 8] {
            let cfg = Flow3dConfig { threads, ..Flow3dConfig::default() };
            let mut engine =
                EcoEngine::new(cfg, design.clone(), base.clone()).unwrap();
            for (k, &(mask, onto, flip)) in batches.iter().enumerate() {
                let moves = batch_moves(k, mask, onto, flip, base);
                let warm = engine.eco(&moves);
                let one_shot = cold.legalize_incremental(design, base, &moves);
                match (warm, one_shot) {
                    (Ok(w), Ok(c)) => prop_assert_eq!(
                        w.placement, c.placement,
                        "batch {} diverged at {} threads", k, threads
                    ),
                    (Err(_), Err(_)) => {}
                    (w, c) => prop_assert!(
                        false,
                        "warm/cold disagree on success: {:?} vs {:?}",
                        w.is_ok(), c.is_ok()
                    ),
                }
            }
        }
    }
}
