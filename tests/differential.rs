//! Differential test harness for the multi-threaded engine: over a
//! matrix of generated cases × seeds × thread counts, the parallel
//! legalizer must produce a placement *byte-identical* to the serial one
//! (compared on the emitted `legal` file text) and identical
//! `LegalizeStats`. This is the executable form of the determinism
//! contract documented on `flow_pass_threaded`.
//!
//! Regression note (flow3d-tidy D1): this matrix only catches an
//! iteration-order bug when the hash seed cooperates, so the contract is
//! *also* enforced statically — `cargo run -p flow3d-lint` rejects
//! `HashMap`/`HashSet` in the deterministic crates outright. The
//! straddling-cell dedup in `crates/core/src/driver.rs` and the name
//! interners in `crates/db`/`crates/io` were migrated to B-tree
//! collections under that lint; if either ever regresses to hashing,
//! the tidy gate fails before this harness has a chance to flake.

use flow3d::prelude::*;
use flow3d_core::LegalizeStats;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// One generated instance: the design plus its global placement.
struct Case {
    label: String,
    design: flow3d::db::Design,
    global: flow3d::db::Placement3d,
}

fn gen_case(label: &str, cfg: GeneratorConfig) -> Case {
    let generated = cfg.generate().expect("case generation failed");
    let global =
        GlobalPlacer::new(GpConfig::default()).place_from(&generated.design, &generated.natural);
    Case {
        label: label.to_string(),
        design: generated.design,
        global,
    }
}

/// The case matrix: three seeds of the dense demo, a scaled standard-cell
/// contest case, and a scaled macro-bearing contest case.
fn cases() -> Vec<Case> {
    let mut out: Vec<Case> = [1u64, 7, 42]
        .iter()
        .map(|&seed| {
            gen_case(
                &format!("small_demo({seed})"),
                GeneratorConfig::small_demo(seed),
            )
        })
        .collect();
    let mut c2022 = GeneratorConfig::iccad2022("case2").unwrap();
    c2022.scale = 0.2;
    out.push(gen_case("iccad2022_case2@0.2", c2022));
    let mut c2023 = GeneratorConfig::iccad2023("case2").unwrap();
    c2023.scale = 0.1;
    out.push(gen_case("iccad2023_case2@0.1", c2023));
    out
}

/// Serializes a legal placement to its on-disk text form — the
/// byte-comparison domain of this harness.
fn legal_bytes(design: &flow3d::db::Design, placement: &flow3d::db::LegalPlacement) -> String {
    let mut text = String::new();
    flow3d::io::write_legal(design, placement, &mut text).expect("serialize legal placement");
    text
}

fn run(case: &Case, mut cfg: Flow3dConfig, threads: usize) -> (String, LegalizeStats) {
    cfg.threads = threads;
    let outcome = Flow3dLegalizer::new(cfg)
        .legalize(&case.design, &case.global)
        .unwrap_or_else(|e| panic!("{}: legalization failed: {e}", case.label));
    let report = check_legal(&case.design, &outcome.placement);
    assert!(report.is_legal(), "{}: {report}", case.label);
    (legal_bytes(&case.design, &outcome.placement), outcome.stats)
}

fn assert_matrix(cfg_label: &str, cfg: Flow3dConfig) {
    for case in cases() {
        let (serial_bytes, serial_stats) = run(&case, cfg.clone(), 1);
        for threads in THREAD_COUNTS {
            let (bytes, stats) = run(&case, cfg.clone(), threads);
            assert_eq!(
                bytes, serial_bytes,
                "{} [{cfg_label}]: placement differs at threads={threads}",
                case.label
            );
            assert_eq!(
                stats, serial_stats,
                "{} [{cfg_label}]: stats differ at threads={threads}",
                case.label
            );
        }
    }
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    assert_matrix("default", Flow3dConfig::default());
}

#[test]
fn parallel_output_is_byte_identical_without_d2d() {
    assert_matrix("no-d2d", Flow3dConfig::without_d2d());
}

/// The selection memo is pure caching: with it disabled the engine must
/// still be thread-count deterministic...
#[test]
fn parallel_output_is_byte_identical_without_selection_memo() {
    assert_matrix(
        "no-memo",
        Flow3dConfig {
            selection_memo: false,
            ..Default::default()
        },
    );
}

/// ...and, memo on vs memo off, every case must produce byte-identical
/// placements and identical stats — the memo may only change how fast
/// `select_moves` answers, never what it answers.
#[test]
fn selection_memo_does_not_change_placements_or_stats() {
    let memo_off = Flow3dConfig {
        selection_memo: false,
        ..Default::default()
    };
    for case in cases() {
        for threads in THREAD_COUNTS {
            let (on_bytes, on_stats) = run(&case, Flow3dConfig::default(), threads);
            let (off_bytes, off_stats) = run(&case, memo_off.clone(), threads);
            assert_eq!(
                on_bytes, off_bytes,
                "{}: memo changed the placement at threads={threads}",
                case.label
            );
            assert_eq!(
                on_stats, off_stats,
                "{}: memo changed the stats at threads={threads}",
                case.label
            );
        }
    }
}

/// Everything the telemetry layer reports — phase paths and call
/// counts, counters, histogram contents, heatmap grids — must be
/// identical for every worker count, not just the placement bytes.
/// Histograms are recorded coordinator-side in deterministic order and
/// counter/histogram registries are name-sorted, so even float sums and
/// iteration order are thread-count invariant.
#[test]
fn telemetry_is_invariant_under_thread_count() {
    for case in cases() {
        let collect = |threads: usize| {
            let mut profile = flow3d_obs::Profile::new();
            let cfg = Flow3dConfig {
                threads,
                ..Default::default()
            };
            Flow3dLegalizer::new(cfg)
                .legalize_observed(&case.design, &case.global, Some(&mut profile))
                .unwrap_or_else(|e| panic!("{}: legalization failed: {e}", case.label));
            let phases: Vec<(String, u64)> = profile
                .phases()
                .map(|(p, s)| (p.to_string(), s.calls))
                .collect();
            let counters: Vec<(String, u64)> = profile
                .counters()
                .iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            // Bucket counts, extremes, and the (deterministically
            // accumulated) float sum, per name-sorted histogram.
            let hists: Vec<(String, Vec<u64>, u64, [u64; 3])> = profile
                .hists()
                .iter()
                .map(|(name, h)| {
                    let s = h.summary();
                    (
                        name.to_string(),
                        h.bucket_counts().to_vec(),
                        h.count(),
                        [s.sum.to_bits(), s.min.to_bits(), s.max.to_bits()],
                    )
                })
                .collect();
            // NaN cells make `Vec<f64>` inequal to itself; compare grids
            // by bit pattern instead.
            let heatmaps: Vec<(String, usize, usize, Vec<u64>)> = profile
                .heatmaps()
                .iter()
                .map(|h| {
                    (
                        h.name.clone(),
                        h.rows,
                        h.cols,
                        h.values.iter().map(|v| v.to_bits()).collect(),
                    )
                })
                .collect();
            (phases, counters, hists, heatmaps)
        };
        let serial = collect(1);
        assert!(
            !serial.2.is_empty() && !serial.3.is_empty(),
            "{}: expected histograms and heatmaps in the serial profile",
            case.label
        );
        for threads in THREAD_COUNTS {
            assert_eq!(
                collect(threads),
                serial,
                "{}: telemetry differs at threads={threads}",
                case.label
            );
        }
    }
}

#[test]
fn auto_thread_resolution_matches_serial() {
    // threads = 0 resolves to FLOW3D_THREADS / available parallelism —
    // whatever it picks on this machine, the result must equal serial.
    let case = gen_case("small_demo(5)", GeneratorConfig::small_demo(5));
    let (serial_bytes, serial_stats) = run(&case, Flow3dConfig::default(), 1);
    let (auto_bytes, auto_stats) = run(&case, Flow3dConfig::default(), 0);
    assert_eq!(auto_bytes, serial_bytes);
    assert_eq!(auto_stats, serial_stats);
}
