//! End-to-end integration: generator → global placer → all four
//! legalizers → metrics, across homogeneous and heterogeneous cases.

use flow3d::prelude::*;

fn legalizers() -> Vec<Box<dyn flow3d_core::Legalizer>> {
    vec![
        Box::new(TetrisLegalizer::default()),
        Box::new(AbacusLegalizer::default()),
        Box::new(BonnLegalizer::default()),
        Box::new(Flow3dLegalizer::default()),
    ]
}

fn full_pipeline(case: flow3d_gen::GeneratedCase) -> Vec<(String, f64, f64)> {
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);
    legalizers()
        .iter()
        .map(|lg| {
            let outcome = lg
                .legalize(&case.design, &global)
                .unwrap_or_else(|e| panic!("{} failed: {e}", lg.name()));
            let report = check_legal(&case.design, &outcome.placement);
            assert!(report.is_legal(), "{}: {report}", lg.name());
            let stats = displacement_stats(&case.design, &global, &outcome.placement);
            (lg.name().to_string(), stats.avg, stats.max)
        })
        .collect()
}

#[test]
fn demo_case_full_pipeline() {
    let case = GeneratorConfig::small_demo(77).generate().unwrap();
    let results = full_pipeline(case);
    assert_eq!(results.len(), 4);
    for (name, avg, max) in &results {
        assert!(*avg >= 0.0 && *max >= *avg, "{name}: avg {avg} max {max}");
    }
}

#[test]
fn scaled_iccad2022_homogeneous_case() {
    let mut cfg = GeneratorConfig::iccad2022("case3").unwrap();
    cfg.scale = 0.05;
    let results = full_pipeline(cfg.generate().unwrap());
    // On clumped homogeneous inputs the flow methods must not lose badly
    // to the greedy ones (shape sanity, not a strict paper claim at this
    // tiny scale).
    let tetris = results[0].1;
    let flow3d = results[3].1;
    assert!(
        flow3d <= tetris * 1.2,
        "3d-flow avg {flow3d:.3} vs tetris {tetris:.3}"
    );
}

#[test]
fn scaled_iccad2023_case_with_macros() {
    let mut cfg = GeneratorConfig::iccad2023("case2").unwrap();
    cfg.scale = 0.15;
    let generated = cfg.generate().unwrap();
    assert!(generated.design.num_macros() > 0);
    full_pipeline(generated);
}

#[test]
fn hetero_row_heights_case() {
    let mut cfg = GeneratorConfig::iccad2022("case3h").unwrap();
    cfg.scale = 0.04;
    let generated = cfg.generate().unwrap();
    let d = &generated.design;
    assert_ne!(
        d.die(DieId::BOTTOM).row_height,
        d.die(DieId::TOP).row_height
    );
    full_pipeline(generated);
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = |seed: u64| {
        let case = GeneratorConfig::small_demo(seed).generate().unwrap();
        let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);
        Flow3dLegalizer::default()
            .legalize(&case.design, &global)
            .unwrap()
            .placement
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn d2d_ablation_shape_on_pressured_case() {
    // Clumped case: the 3D legalizer with D2D moves must be at least as
    // good on max displacement as its 2D-restricted self (Table V shape).
    let mut cfg = GeneratorConfig::iccad2022("case2").unwrap();
    cfg.scale = 1.0;
    let case = cfg.generate().unwrap();
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);
    let with = Flow3dLegalizer::default()
        .legalize(&case.design, &global)
        .unwrap();
    let without = Flow3dLegalizer::new(Flow3dConfig::without_d2d())
        .legalize(&case.design, &global)
        .unwrap();
    let s_with = displacement_stats(&case.design, &global, &with.placement);
    let s_without = displacement_stats(&case.design, &global, &without.placement);
    assert_eq!(without.stats.cross_die_moves, 0);
    assert!(with.stats.cross_die_moves > 0);
    assert!(
        s_with.avg <= s_without.avg * 1.05,
        "D2D hurt avg displacement: {:.3} vs {:.3}",
        s_with.avg,
        s_without.avg
    );
}

#[test]
fn post_opt_reduces_or_keeps_max_displacement() {
    let mut cfg = GeneratorConfig::iccad2022("case2").unwrap();
    cfg.scale = 1.0;
    let case = cfg.generate().unwrap();
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);
    let with = Flow3dLegalizer::default()
        .legalize(&case.design, &global)
        .unwrap();
    let without = Flow3dLegalizer::new(Flow3dConfig {
        post_opt: false,
        ..Default::default()
    })
    .legalize(&case.design, &global)
    .unwrap();
    let s_with = displacement_stats(&case.design, &global, &with.placement);
    let s_without = displacement_stats(&case.design, &global, &without.placement);
    assert!(s_with.max <= s_without.max + 1e-9);
}

use flow3d::db::DieId;
