//! The paper claims 3D-Flow "is sufficiently general to apply to other
//! types of 3D ICs with more than two dies" (§II-A). The core legalizer
//! indeed supports N-die stacks: D2D edges connect adjacent layers, and
//! the die partition / utilization accounting are per-die vectors. This
//! test exercises a three-die monolithic-style stack end to end.

use flow3d::db::{CellId, DesignBuilder, DieId, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d::prelude::*;
use flow3d_geom::FPoint;

fn three_die_design(n: usize) -> flow3d::db::Design {
    let mut b = DesignBuilder::new("stack3")
        .technology(TechnologySpec::new("T0").lib_cell(LibCellSpec::std_cell("C", 20, 10)))
        .technology(TechnologySpec::new("T1").lib_cell(LibCellSpec::std_cell("C", 16, 8)))
        .technology(TechnologySpec::new("T2").lib_cell(LibCellSpec::std_cell("C", 24, 12)))
        .die(DieSpec::new("tier0", "T0", (0, 0, 300, 40), 10, 1, 0.9))
        .die(DieSpec::new("tier1", "T1", (0, 0, 300, 40), 8, 1, 0.9))
        .die(DieSpec::new("tier2", "T2", (0, 0, 300, 36), 12, 1, 0.9));
    for i in 0..n {
        b = b.cell(format!("u{i}"), "C");
    }
    b.build().unwrap()
}

#[test]
fn three_die_stack_legalizes_with_cross_tier_moves() {
    let n = 36;
    let design = three_die_design(n);
    let mut gp = Placement3d::new(n);
    // Everything clumps on the middle tier's lower-left corner; the stack
    // has room but tier1 alone does not.
    for i in 0..n {
        let c = CellId::new(i);
        gp.set_pos(c, FPoint::new((i % 4) as f64 * 5.0, 4.0));
        gp.set_die_affinity(c, 1.0 + (i % 3) as f64 * 0.1); // prefers tier1
    }
    let outcome = Flow3dLegalizer::default().legalize(&design, &gp).unwrap();
    let report = check_legal(&design, &outcome.placement);
    assert!(report.is_legal(), "{report}");

    // Cells ended up on at least two tiers (tier1 cannot hold the clump
    // near its corner without large displacement).
    let mut per_tier = [0usize; 3];
    for i in 0..n {
        per_tier[outcome.placement.die(CellId::new(i)).index()] += 1;
    }
    assert!(
        per_tier.iter().filter(|&&k| k > 0).count() >= 2,
        "{per_tier:?}"
    );

    // Widths follow the tier technology.
    for i in 0..n {
        let c = CellId::new(i);
        let die = outcome.placement.die(c);
        let expected = match die.index() {
            0 => 20,
            1 => 16,
            _ => 24,
        };
        assert_eq!(design.cell_width(c, die), expected);
    }
}

#[test]
fn three_die_partition_respects_utilization() {
    // Tiny caps force the initial partition to spread across all tiers.
    let n = 30;
    let mut b = DesignBuilder::new("stack3")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 20, 10)))
        .die(DieSpec::new("tier0", "T", (0, 0, 300, 20), 10, 1, 0.4))
        .die(DieSpec::new("tier1", "T", (0, 0, 300, 20), 10, 1, 0.4))
        .die(DieSpec::new("tier2", "T", (0, 0, 300, 20), 10, 1, 0.4));
    for i in 0..n {
        b = b.cell(format!("u{i}"), "C");
    }
    let design = b.build().unwrap();
    // 30 cells x 200 DBU² = 6000; per-tier cap = 0.4 * 6000 = 2400.
    let gp = Placement3d::new(n); // all prefer tier0
    let outcome = Flow3dLegalizer::default().legalize(&design, &gp).unwrap();
    assert!(check_legal(&design, &outcome.placement).is_legal());
    let mut used = [0i64; 3];
    for i in 0..n {
        let c = CellId::new(i);
        let die = outcome.placement.die(c);
        used[die.index()] += design.cell_width(c, die) * design.cell_height(die);
    }
    for (tier, &u) in used.iter().enumerate() {
        assert!(u <= 2400, "tier{tier} used {u} > 2400");
    }
}

#[test]
fn middle_tier_connects_to_both_neighbours_not_to_skip_levels() {
    use flow3d_core::grid::{BinGrid, EdgeKind};
    let design = three_die_design(4);
    let layout = flow3d::db::RowLayout::build(&design);
    let grid = BinGrid::build(&design, &layout, &[100, 100, 100], true);
    for i in 0..grid.num_bins() {
        let a = grid.bin(flow3d_core::grid::BinId::new(i));
        for &(to, kind) in grid.neighbors(flow3d_core::grid::BinId::new(i)) {
            if kind == EdgeKind::DieToDie {
                let b = grid.bin(to);
                let gap = (a.die.index() as i64 - b.die.index() as i64).abs();
                assert_eq!(gap, 1, "D2D edge skips a tier: {} -> {}", a.die, b.die);
            }
        }
    }
    // tier0 <-> tier1 and tier1 <-> tier2 edges both exist.
    let mut pairs = std::collections::HashSet::new();
    for i in 0..grid.num_bins() {
        let a = grid.bin(flow3d_core::grid::BinId::new(i));
        for &(to, kind) in grid.neighbors(flow3d_core::grid::BinId::new(i)) {
            if kind == EdgeKind::DieToDie {
                let b = grid.bin(to);
                let lo = a.die.index().min(b.die.index());
                pairs.insert(lo);
            }
        }
    }
    assert!(pairs.contains(&0) && pairs.contains(&1), "{pairs:?}");
    let _ = DieId::BOTTOM;
}
