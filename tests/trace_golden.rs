//! Golden tests for the Chrome `trace_event` export: a pinned small
//! case must produce a trace with a stable set of span names whose
//! per-name counts agree with the profile's phase call counts, valid
//! JSON structure, timestamp-ordered events, and — at 8 workers — at
//! least two distinct worker timelines. Baseline legalizers go through
//! the same `legalize_observed` path, so they are traced here too.

use flow3d::prelude::*;
use flow3d_obs::{Json, TracePhase};
use std::collections::BTreeMap;

fn demo_case() -> (flow3d::db::Design, flow3d::db::Placement3d) {
    let generated = GeneratorConfig::small_demo(1)
        .generate()
        .expect("demo generation");
    let global =
        GlobalPlacer::new(GpConfig::default()).place_from(&generated.design, &generated.natural);
    (generated.design, global)
}

fn traced_run(threads: usize) -> Profile {
    let (design, global) = demo_case();
    let mut profile = Profile::new();
    profile.enable_tracing();
    Flow3dLegalizer::new(Flow3dConfig {
        threads,
        ..Default::default()
    })
    .legalize_observed(&design, &global, Some(&mut profile))
    .expect("legalization");
    profile
}

/// Count of Complete events per leaf name, the trace's order-free
/// "shape" — stable across runs and thread counts even though wall-clock
/// timestamps are not.
fn span_multiset(profile: &Profile) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for e in profile.trace_events() {
        if e.phase == TracePhase::Complete {
            *counts.entry(e.name.clone()).or_insert(0usize) += 1;
        }
    }
    counts
}

#[test]
fn trace_spans_cover_the_pipeline_and_match_phase_calls() {
    let profile = traced_run(1);
    let spans = span_multiset(&profile);
    // The tentpole span set: flow-pass batches, per-source best-first
    // searches, the serial apply phase, and PlaceRow segments.
    for required in [
        "legalize",
        "flow_pass",
        "search_batch",
        "source_search",
        "apply",
        "placerow",
        "segment",
    ] {
        assert!(
            spans.contains_key(required),
            "span `{required}` missing from trace; present: {:?}",
            spans.keys().collect::<Vec<_>>()
        );
    }
    // Golden cross-check: every traced span name occurs exactly as many
    // times as the profile counted calls for phases with that leaf name.
    let mut phase_calls: BTreeMap<String, u64> = BTreeMap::new();
    for (path, stats) in profile.phases() {
        let leaf = path.rsplit('/').next().unwrap().to_string();
        *phase_calls.entry(leaf).or_insert(0) += stats.calls;
    }
    for (name, n) in &spans {
        assert_eq!(
            phase_calls.get(name).copied(),
            Some(*n as u64),
            "span `{name}` count disagrees with phase calls"
        );
    }
}

#[test]
fn trace_shape_is_identical_for_every_thread_count() {
    let serial = span_multiset(&traced_run(1));
    for threads in [2, 8] {
        assert_eq!(
            span_multiset(&traced_run(threads)),
            serial,
            "trace span multiset changed at threads={threads}"
        );
    }
}

#[test]
fn eight_workers_produce_multiple_worker_timelines() {
    // The demo case is too small here: in release builds one worker can
    // drain its whole item queue before the others spawn. Contest case2
    // has enough searches and segments per batch that 8 workers reliably
    // share the work; allow a few attempts to absorb scheduler noise.
    let mut cfg = GeneratorConfig::iccad2022("case2").expect("known case");
    cfg.scale = 1.0;
    let generated = cfg.generate().expect("case generation");
    let global =
        GlobalPlacer::new(GpConfig::default()).place_from(&generated.design, &generated.natural);
    let mut seen = Vec::new();
    for _attempt in 0..5 {
        let mut profile = Profile::new();
        profile.enable_tracing();
        Flow3dLegalizer::new(Flow3dConfig {
            threads: 8,
            ..Default::default()
        })
        .legalize_observed(&generated.design, &global, Some(&mut profile))
        .expect("legalization");
        let mut worker_tracks: Vec<u32> = profile
            .trace_events()
            .iter()
            .filter(|e| e.track > 0)
            .map(|e| e.track)
            .collect();
        worker_tracks.sort_unstable();
        worker_tracks.dedup();
        if worker_tracks.len() >= 2 {
            return;
        }
        seen = worker_tracks;
    }
    panic!("expected >=2 distinct worker timelines, got tracks {seen:?}");
}

#[test]
fn chrome_export_is_ordered_valid_json_with_named_tracks() {
    let profile = traced_run(2);
    let text = profile
        .to_chrome_trace("flow3d golden")
        .expect("tracing was armed");
    let doc = Json::parse(&text).expect("export parses as JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let records = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    let meta_names: Vec<&str> = records
        .iter()
        .filter(|r| r.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|r| {
            r.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(meta_names.contains(&"flow3d golden"));
    assert!(meta_names.contains(&"coordinator"));
    assert!(
        meta_names.iter().any(|n| n.starts_with("worker-")),
        "no worker thread_name metadata in {meta_names:?}"
    );
    // Spans are timestamp-ordered with non-negative µs durations.
    let mut last_ts = f64::NEG_INFINITY;
    let mut span_count = 0usize;
    for r in records {
        if r.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        span_count += 1;
        let ts = r.get("ts").and_then(Json::as_f64).expect("ts present");
        let dur = r.get("dur").and_then(Json::as_f64).expect("dur present");
        assert!(ts >= last_ts, "events out of order: {ts} after {last_ts}");
        assert!(dur >= 0.0);
        last_ts = ts;
    }
    assert_eq!(span_count, span_multiset(&profile).values().sum::<usize>());
}

#[test]
fn baselines_trace_through_the_same_hook() {
    let (design, global) = demo_case();
    for legalizer in [
        Box::new(TetrisLegalizer::default()) as Box<dyn Legalizer>,
        Box::new(AbacusLegalizer::default()),
        Box::new(BonnLegalizer::default()),
    ] {
        let mut profile = Profile::new();
        profile.enable_tracing();
        legalizer
            .legalize_observed(&design, &global, Some(&mut profile))
            .unwrap_or_else(|e| panic!("{} failed: {e}", legalizer.name()));
        assert!(
            !profile.trace_events().is_empty(),
            "{} recorded no trace events",
            legalizer.name()
        );
        let text = profile
            .to_chrome_trace(legalizer.name())
            .expect("tracing armed");
        Json::parse(&text)
            .unwrap_or_else(|e| panic!("{} trace is invalid JSON: {e}", legalizer.name()));
    }
}
