//! Stage-level property tests: the pipeline is driven one phase at a
//! time — assign, flow pass, placerow, post-opt — and the legality
//! invariants are asserted after *every* stage, not just at the end:
//!
//! * flow state self-consistency (`FlowState::check_invariants`);
//! * zero overflow and per-die utilization under its cap after the flow
//!   pass, with every cell holding fragments on exactly one die;
//! * no overlaps, on-row and on-site positions after placerow, with each
//!   cell's die matching the flow assignment;
//! * post-optimization never increasing the maximum displacement.
//!
//! The flow and row phases run on 2 worker threads here; the
//! differential suite separately proves thread-count invariance.

use flow3d::db::{DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d::prelude::*;
use flow3d_core::driver::{bin_widths, flow_pass_threaded, placerow_all_threaded};
use flow3d_core::grid::BinGrid;
use flow3d_core::search::SearchParams;
use flow3d_core::selection::SelectionParams;
use flow3d_core::{assign, cycle, LegalizeStats};
use flow3d_db::{CellId, DieId, LegalPlacement, RowLayout};
use flow3d_geom::FPoint;
use proptest::prelude::*;

const THREADS: usize = 2;

/// A random instance: up to 30 cells with widths 10–50 on two 400x40
/// dies, anchors anywhere (including outside the outline).
fn arb_instance() -> impl Strategy<Value = (Vec<i64>, Vec<(f64, f64, f64)>)> {
    (1usize..30).prop_flat_map(|n| {
        (
            proptest::collection::vec(1i64..=5, n),
            proptest::collection::vec((-50.0f64..450.0, -20.0f64..60.0, 0.0f64..1.0), n),
        )
    })
}

fn build(widths: &[i64], anchors: &[(f64, f64, f64)]) -> (flow3d::db::Design, Placement3d) {
    let mut b = DesignBuilder::new("stage-prop")
        .technology(
            TechnologySpec::new("TA")
                .lib_cell(LibCellSpec::std_cell("C1", 10, 10))
                .lib_cell(LibCellSpec::std_cell("C2", 20, 10))
                .lib_cell(LibCellSpec::std_cell("C3", 30, 10))
                .lib_cell(LibCellSpec::std_cell("C4", 40, 10))
                .lib_cell(LibCellSpec::std_cell("C5", 50, 10)),
        )
        .technology(
            TechnologySpec::new("TB")
                .lib_cell(LibCellSpec::std_cell("C1", 12, 8))
                .lib_cell(LibCellSpec::std_cell("C2", 24, 8))
                .lib_cell(LibCellSpec::std_cell("C3", 36, 8))
                .lib_cell(LibCellSpec::std_cell("C4", 48, 8))
                .lib_cell(LibCellSpec::std_cell("C5", 60, 8)),
        )
        .die(DieSpec::new("bottom", "TA", (0, 0, 400, 40), 10, 2, 0.95))
        .die(DieSpec::new("top", "TB", (0, 0, 400, 40), 8, 2, 0.95));
    for (i, &w) in widths.iter().enumerate() {
        b = b.cell(format!("u{i}"), format!("C{w}"));
    }
    let design = b.build().unwrap();
    let mut gp = Placement3d::new(widths.len());
    for (i, &(x, y, z)) in anchors.iter().enumerate() {
        let c = CellId::new(i);
        gp.set_pos(c, FPoint::new(x, y));
        gp.set_die_affinity(c, z);
    }
    (design, gp)
}

/// The driver's search parameters for a config (mirrors
/// `Flow3dLegalizer::run`).
fn params_for(design: &flow3d::db::Design, cfg: &Flow3dConfig) -> SearchParams {
    let slack = design
        .dies()
        .iter()
        .map(|d| d.row_height)
        .min()
        .unwrap_or(1) as f64;
    let d2d_penalty = design
        .dies()
        .iter()
        .map(|d| d.row_height)
        .max()
        .unwrap_or(1) as f64;
    SearchParams {
        alpha: cfg.alpha,
        slack,
        dijkstra: false,
        use_memo: cfg.selection_memo,
        memo_slots: cfg.memo_slots,
        selection: SelectionParams {
            clamp_negative: false,
            d2d_congestion_cost: cfg.d2d_congestion_cost,
            d2d_penalty,
        },
    }
}

// ---------------------------------------------------------------------
// Reference search kernel
//
// A deliberately naive re-implementation of the production kernel's
// semantics: per-call Vec + BinaryHeap (no arena reuse), direct
// `select_moves` (no memo), and its own 4-line bound and total-order
// wrapper. Identical push/pop sequences give identical `BinaryHeap`
// behaviour, so the optimized kernel must reproduce this one node for
// node — path, cost bits, and every counter.
// ---------------------------------------------------------------------

struct RefCounters {
    expanded: usize,
    created: usize,
    pruned: usize,
    pruned_stale: usize,
}

#[derive(Clone, Copy)]
struct RefNode {
    bin: flow3d_core::grid::BinId,
    parent: u32,
    inflow: i64,
    cost: f64,
    edge: flow3d_core::grid::EdgeKind,
}

#[derive(PartialEq)]
struct RefOrd(f64);
impl Eq for RefOrd {}
impl PartialOrd for RefOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn ref_bound(best: f64, alpha: f64, slack: f64) -> f64 {
    if best.is_infinite() || alpha.is_infinite() {
        f64::INFINITY
    } else {
        best + alpha * best.abs().max(slack)
    }
}

fn reference_search(
    state: &flow3d_core::state::FlowState<'_>,
    source: flow3d_core::grid::BinId,
    limit: i64,
    params: &SearchParams,
) -> (Option<flow3d_core::search::AugmentingPath>, RefCounters) {
    use flow3d_core::search::{AugmentingPath, PathStep};
    use flow3d_core::selection::select_moves;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut counters = RefCounters {
        expanded: 0,
        created: 0,
        pruned: 0,
        pruned_stale: 0,
    };
    let supply = state.sup(source).min(limit);
    if supply <= 0 {
        return (None, counters);
    }
    let mut visited = vec![false; state.grid.num_bins()];
    let mut nodes: Vec<RefNode> = vec![RefNode {
        bin: source,
        parent: u32::MAX,
        inflow: supply,
        cost: 0.0,
        edge: flow3d_core::grid::EdgeKind::Horizontal,
    }];
    let mut heap: BinaryHeap<Reverse<(RefOrd, u32)>> = BinaryHeap::new();
    heap.push(Reverse((RefOrd(0.0), 0)));
    visited[source.index()] = true;

    let mut best: Option<(u32, f64)> = None;
    while let Some(Reverse((RefOrd(cost), idx))) = heap.pop() {
        let node = nodes[idx as usize];
        let best_cost = best.map(|(_, c)| c).unwrap_or(f64::INFINITY);
        if !params.dijkstra && cost >= ref_bound(best_cost, params.alpha, params.slack) {
            // Stale entry: dropped under clamped costs, expanded (but not
            // counted as such) under signed costs — see the kernel.
            counters.pruned_stale += 1;
            if params.selection.clamp_negative {
                continue;
            }
        } else {
            counters.expanded += 1;
        }
        if params.dijkstra && idx != 0 && node.inflow <= state.dem(node.bin) {
            best = Some((idx, node.cost));
            break;
        }
        let needed = node.inflow - state.dem(node.bin);
        if needed <= 0 {
            continue;
        }
        for &(nbr, kind) in state.grid.neighbors(node.bin) {
            if visited[nbr.index()] {
                continue;
            }
            let Some(sel) = select_moves(state, node.bin, nbr, kind, needed, &params.selection)
            else {
                continue;
            };
            visited[nbr.index()] = true;
            let child_cost = node.cost + sel.cost;
            let best_cost = best.map(|(_, c)| c).unwrap_or(f64::INFINITY);
            if !params.dijkstra && child_cost >= ref_bound(best_cost, params.alpha, params.slack) {
                counters.pruned += 1;
                continue;
            }
            let child = RefNode {
                bin: nbr,
                parent: idx,
                inflow: sel.added_to_v,
                cost: child_cost,
                edge: kind,
            };
            let child_idx = nodes.len() as u32;
            nodes.push(child);
            counters.created += 1;
            if !params.dijkstra && child.inflow <= state.dem(nbr) {
                if child_cost < best_cost {
                    best = Some((child_idx, child_cost));
                }
            } else {
                heap.push(Reverse((RefOrd(child_cost), child_idx)));
            }
        }
    }
    let path = best.map(|(leaf, _)| {
        let mut steps = Vec::new();
        let cost = nodes[leaf as usize].cost;
        let mut idx = leaf;
        loop {
            let n = &nodes[idx as usize];
            steps.push(PathStep {
                bin: n.bin,
                inflow: n.inflow,
                edge: n.edge,
            });
            if n.parent == u32::MAX {
                break;
            }
            idx = n.parent;
        }
        steps.reverse();
        AugmentingPath { steps, cost }
    });
    (path, counters)
}

/// Like [`arb_instance`], but anchors land in a narrow y-band so the
/// initial assignment piles cells into one or two rows. Each bin here
/// spans a whole 400-DBU row, so crowding a row past 400 DBU of cell
/// width overflows its bin while the design stays globally feasible —
/// exactly the states the search kernel is invoked on.
fn arb_congested_instance() -> impl Strategy<Value = (Vec<i64>, Vec<(f64, f64, f64)>)> {
    (14usize..30).prop_flat_map(|n| {
        (
            proptest::collection::vec(2i64..=5, n),
            proptest::collection::vec((-50.0f64..450.0, -5.0f64..15.0, 0.0f64..1.0), n),
        )
    })
}

/// The production kernel (arena reuse + pop-time pruning + selection
/// memo, with the memo both on and off) must reproduce the naive
/// reference search node for node on random designs, in both best-first
/// and Dijkstra modes.
#[test]
fn kernel_matches_naive_reference_implementation() {
    use flow3d_core::search::{find_path_limited, SearchCounters, SearchScratch, SearchShared};

    let mut compared = 0usize;
    proptest!(ProptestConfig::with_cases(24), |(
        (widths, anchors) in arb_congested_instance()
    )| {
        let (design, gp) = build(&widths, &anchors);
        let cfg = Flow3dConfig::default();
        let layout = RowLayout::build(&design);
        let Ok(mut dies) = assign::partition_dies(&design, &gp) else { return; };
        let bw = bin_widths(&design, cfg.bin_width_factor);
        let grid = BinGrid::build(&design, &layout, &bw, cfg.allow_d2d);
        let Ok(state) = assign::build_state(&design, &layout, &grid, &gp, &mut dies)
        else { return; };

        let best_first = params_for(&design, &cfg);
        let dijkstra = SearchParams {
            dijkstra: true,
            selection: SelectionParams {
                clamp_negative: true,
                ..best_first.selection
            },
            ..best_first
        };
        let mut scratch = SearchScratch::new(grid.num_bins());
        for mode in [best_first, dijkstra] {
            for bin in state.overflowed_bins() {
                let limit = state.sup(bin);
                let (want, rc) = reference_search(&state, bin, limit, &mode);
                for use_memo in [false, true] {
                    let params = SearchParams { use_memo, ..mode };
                    scratch.begin_source();
                    let mut c = SearchCounters::default();
                    let got = find_path_limited(
                        &state,
                        bin,
                        limit,
                        &params,
                        &SearchShared::default(),
                        &mut scratch,
                        &mut c,
                    );
                    match (&got, &want) {
                        (Some(g), Some(w)) => {
                            prop_assert_eq!(&g.steps, &w.steps, "steps (memo={})", use_memo);
                            prop_assert_eq!(g.cost.to_bits(), w.cost.to_bits());
                        }
                        (None, None) => {}
                        _ => prop_assert!(
                            false,
                            "path presence mismatch (memo={}): kernel={} reference={}",
                            use_memo, got.is_some(), want.is_some()
                        ),
                    }
                    prop_assert_eq!(c.expanded, rc.expanded);
                    prop_assert_eq!(c.created, rc.created);
                    prop_assert_eq!(c.pruned, rc.pruned);
                    prop_assert_eq!(c.pruned_stale, rc.pruned_stale);
                    prop_assert!(c.pruned_stale <= c.created, "pruned_stale ≤ created");
                    prop_assert!(c.expanded + c.pruned_stale <= c.created + 1);
                    compared += 1;
                }
            }
        }
    });
    assert!(
        compared >= 8,
        "only {compared} kernel-vs-reference comparisons ran — fixture too sparse"
    );
}

#[test]
fn every_pipeline_stage_upholds_the_legality_invariants() {
    // Typed rejections of infeasible random instances skip a case; the
    // counter at the bottom proves the property is not vacuously green.
    let mut completed = 0usize;
    proptest!(ProptestConfig::with_cases(32), |(
        (widths, anchors) in arb_instance()
    )| {
        let (design, gp) = build(&widths, &anchors);
        let cfg = Flow3dConfig::default();

        // Stage: partition + grid + assignment. A typed rejection of an
        // infeasible random instance is fine; success must be consistent.
        let layout = RowLayout::build(&design);
        let Ok(mut dies) = assign::partition_dies(&design, &gp) else { return; };
        let bw = bin_widths(&design, cfg.bin_width_factor);
        let grid = BinGrid::build(&design, &layout, &bw, cfg.allow_d2d);
        let Ok(mut state) = assign::build_state(&design, &layout, &grid, &gp, &mut dies)
        else { return; };
        prop_assert_eq!(state.check_invariants(), Ok(()), "after assign");

        // Stage: flow pass.
        let params = params_for(&design, &cfg);
        let mut stats = LegalizeStats::default();
        if flow_pass_threaded(&mut state, &params, THREADS, &mut stats, None).is_err() {
            return;
        }
        prop_assert_eq!(state.check_invariants(), Ok(()), "after flow_pass");
        prop_assert_eq!(state.total_overflow(), 0, "flow pass left overflow");
        for d in 0..design.num_dies() {
            prop_assert!(
                state.area_headroom(DieId::new(d)) >= 0,
                "die {} exceeds its utilization cap by {} DBU²",
                d,
                -state.area_headroom(DieId::new(d))
            );
        }
        for c in 0..design.num_cells() {
            let cell = CellId::new(c);
            let frags = state.cell_frags(cell);
            prop_assert!(!frags.is_empty(), "cell {} lost its fragments", c);
            let die = state.cell_die(cell);
            prop_assert!(
                frags.iter().all(|&(b, _)| state.grid.bin(b).die == die),
                "cell {} has fragments on more than one die",
                c
            );
        }

        // Stage: placerow.
        let Ok(placement) = placerow_all_threaded(&state, cfg.row_algo, THREADS, None)
        else { return; };
        let report = check_legal(&design, &placement);
        prop_assert!(report.is_legal(), "placerow output illegal: {}", report);
        for c in 0..design.num_cells() {
            let cell = CellId::new(c);
            prop_assert_eq!(
                placement.die(cell),
                state.cell_die(cell),
                "placerow changed cell {}'s die",
                c
            );
        }

        // Stage: post-optimization. It must keep the placement legal and
        // never increase the maximum displacement it set out to reduce.
        let anchor = assign::anchors(&design, &gp);
        let max_disp = |pl: &LegalPlacement| {
            (0..design.num_cells())
                .map(|i| pl.pos(CellId::new(i)).manhattan(anchor[i]))
                .max()
                .unwrap_or(0)
        };
        let before = max_disp(&placement);
        let mut post = placement.clone();
        if cycle::post_optimize(
            &design, &layout, &gp, &cfg, &params, &mut post, &mut stats, None,
        )
        .is_err()
        {
            return;
        }
        let report = check_legal(&design, &post);
        prop_assert!(report.is_legal(), "post-opt output illegal: {}", report);
        prop_assert!(
            max_disp(&post) <= before,
            "post-opt worsened max displacement: {} -> {}",
            before,
            max_disp(&post)
        );
        completed += 1;
    });
    assert!(
        completed >= 8,
        "only {completed}/32 random cases reached the post-opt stage"
    );
}
