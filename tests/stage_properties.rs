//! Stage-level property tests: the pipeline is driven one phase at a
//! time — assign, flow pass, placerow, post-opt — and the legality
//! invariants are asserted after *every* stage, not just at the end:
//!
//! * flow state self-consistency (`FlowState::check_invariants`);
//! * zero overflow and per-die utilization under its cap after the flow
//!   pass, with every cell holding fragments on exactly one die;
//! * no overlaps, on-row and on-site positions after placerow, with each
//!   cell's die matching the flow assignment;
//! * post-optimization never increasing the maximum displacement.
//!
//! The flow and row phases run on 2 worker threads here; the
//! differential suite separately proves thread-count invariance.

use flow3d::db::{DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d::prelude::*;
use flow3d_core::driver::{bin_widths, flow_pass_threaded, placerow_all_threaded};
use flow3d_core::grid::BinGrid;
use flow3d_core::search::SearchParams;
use flow3d_core::selection::SelectionParams;
use flow3d_core::{assign, cycle, LegalizeStats};
use flow3d_db::{CellId, DieId, LegalPlacement, RowLayout};
use flow3d_geom::FPoint;
use proptest::prelude::*;

const THREADS: usize = 2;

/// A random instance: up to 30 cells with widths 10–50 on two 400x40
/// dies, anchors anywhere (including outside the outline).
fn arb_instance() -> impl Strategy<Value = (Vec<i64>, Vec<(f64, f64, f64)>)> {
    (1usize..30).prop_flat_map(|n| {
        (
            proptest::collection::vec(1i64..=5, n),
            proptest::collection::vec((-50.0f64..450.0, -20.0f64..60.0, 0.0f64..1.0), n),
        )
    })
}

fn build(widths: &[i64], anchors: &[(f64, f64, f64)]) -> (flow3d::db::Design, Placement3d) {
    let mut b = DesignBuilder::new("stage-prop")
        .technology(
            TechnologySpec::new("TA")
                .lib_cell(LibCellSpec::std_cell("C1", 10, 10))
                .lib_cell(LibCellSpec::std_cell("C2", 20, 10))
                .lib_cell(LibCellSpec::std_cell("C3", 30, 10))
                .lib_cell(LibCellSpec::std_cell("C4", 40, 10))
                .lib_cell(LibCellSpec::std_cell("C5", 50, 10)),
        )
        .technology(
            TechnologySpec::new("TB")
                .lib_cell(LibCellSpec::std_cell("C1", 12, 8))
                .lib_cell(LibCellSpec::std_cell("C2", 24, 8))
                .lib_cell(LibCellSpec::std_cell("C3", 36, 8))
                .lib_cell(LibCellSpec::std_cell("C4", 48, 8))
                .lib_cell(LibCellSpec::std_cell("C5", 60, 8)),
        )
        .die(DieSpec::new("bottom", "TA", (0, 0, 400, 40), 10, 2, 0.95))
        .die(DieSpec::new("top", "TB", (0, 0, 400, 40), 8, 2, 0.95));
    for (i, &w) in widths.iter().enumerate() {
        b = b.cell(format!("u{i}"), format!("C{w}"));
    }
    let design = b.build().unwrap();
    let mut gp = Placement3d::new(widths.len());
    for (i, &(x, y, z)) in anchors.iter().enumerate() {
        let c = CellId::new(i);
        gp.set_pos(c, FPoint::new(x, y));
        gp.set_die_affinity(c, z);
    }
    (design, gp)
}

/// The driver's search parameters for a config (mirrors
/// `Flow3dLegalizer::run`).
fn params_for(design: &flow3d::db::Design, cfg: &Flow3dConfig) -> SearchParams {
    let slack = design
        .dies()
        .iter()
        .map(|d| d.row_height)
        .min()
        .unwrap_or(1) as f64;
    let d2d_penalty = design
        .dies()
        .iter()
        .map(|d| d.row_height)
        .max()
        .unwrap_or(1) as f64;
    SearchParams {
        alpha: cfg.alpha,
        slack,
        dijkstra: false,
        selection: SelectionParams {
            clamp_negative: false,
            d2d_congestion_cost: cfg.d2d_congestion_cost,
            d2d_penalty,
        },
    }
}

#[test]
fn every_pipeline_stage_upholds_the_legality_invariants() {
    // Typed rejections of infeasible random instances skip a case; the
    // counter at the bottom proves the property is not vacuously green.
    let mut completed = 0usize;
    proptest!(ProptestConfig::with_cases(32), |(
        (widths, anchors) in arb_instance()
    )| {
        let (design, gp) = build(&widths, &anchors);
        let cfg = Flow3dConfig::default();

        // Stage: partition + grid + assignment. A typed rejection of an
        // infeasible random instance is fine; success must be consistent.
        let layout = RowLayout::build(&design);
        let Ok(mut dies) = assign::partition_dies(&design, &gp) else { return; };
        let bw = bin_widths(&design, cfg.bin_width_factor);
        let grid = BinGrid::build(&design, &layout, &bw, cfg.allow_d2d);
        let Ok(mut state) = assign::build_state(&design, &layout, &grid, &gp, &mut dies)
        else { return; };
        prop_assert_eq!(state.check_invariants(), Ok(()), "after assign");

        // Stage: flow pass.
        let params = params_for(&design, &cfg);
        let mut stats = LegalizeStats::default();
        if flow_pass_threaded(&mut state, &params, THREADS, &mut stats, None).is_err() {
            return;
        }
        prop_assert_eq!(state.check_invariants(), Ok(()), "after flow_pass");
        prop_assert_eq!(state.total_overflow(), 0, "flow pass left overflow");
        for d in 0..design.num_dies() {
            prop_assert!(
                state.area_headroom(DieId::new(d)) >= 0,
                "die {} exceeds its utilization cap by {} DBU²",
                d,
                -state.area_headroom(DieId::new(d))
            );
        }
        for c in 0..design.num_cells() {
            let cell = CellId::new(c);
            let frags = state.cell_frags(cell);
            prop_assert!(!frags.is_empty(), "cell {} lost its fragments", c);
            let die = state.cell_die(cell);
            prop_assert!(
                frags.iter().all(|&(b, _)| state.grid.bin(b).die == die),
                "cell {} has fragments on more than one die",
                c
            );
        }

        // Stage: placerow.
        let Ok(placement) = placerow_all_threaded(&state, cfg.row_algo, THREADS, None)
        else { return; };
        let report = check_legal(&design, &placement);
        prop_assert!(report.is_legal(), "placerow output illegal: {}", report);
        for c in 0..design.num_cells() {
            let cell = CellId::new(c);
            prop_assert_eq!(
                placement.die(cell),
                state.cell_die(cell),
                "placerow changed cell {}'s die",
                c
            );
        }

        // Stage: post-optimization. It must keep the placement legal and
        // never increase the maximum displacement it set out to reduce.
        let anchor = assign::anchors(&design, &gp);
        let max_disp = |pl: &LegalPlacement| {
            (0..design.num_cells())
                .map(|i| pl.pos(CellId::new(i)).manhattan(anchor[i]))
                .max()
                .unwrap_or(0)
        };
        let before = max_disp(&placement);
        let mut post = placement.clone();
        if cycle::post_optimize(
            &design, &layout, &gp, &cfg, &params, &mut post, &mut stats, None,
        )
        .is_err()
        {
            return;
        }
        let report = check_legal(&design, &post);
        prop_assert!(report.is_legal(), "post-opt output illegal: {}", report);
        prop_assert!(
            max_disp(&post) <= before,
            "post-opt worsened max displacement: {} -> {}",
            before,
            max_disp(&post)
        );
        completed += 1;
    });
    assert!(
        completed >= 8,
        "only {completed}/32 random cases reached the post-opt stage"
    );
}
