//! File-format round-trips on generated designs, including a full
//! legalize-from-files cycle.

use flow3d::prelude::*;

fn demo() -> flow3d_gen::GeneratedCase {
    GeneratorConfig::small_demo(123).generate().unwrap()
}

#[test]
fn case_file_roundtrip_is_lossless() {
    let case = demo();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    let reparsed = flow3d::io::parse_case(&text).unwrap();
    assert_eq!(reparsed, case.design);

    // Idempotent: writing the reparsed design gives identical text.
    let mut text2 = String::new();
    flow3d::io::write_case(&reparsed, &mut text2).unwrap();
    assert_eq!(text, text2);
}

#[test]
fn iccad2023_case_with_macros_roundtrips() {
    let mut cfg = GeneratorConfig::iccad2023("case2").unwrap();
    cfg.scale = 0.1;
    let case = cfg.generate().unwrap();
    assert!(case.design.num_macros() > 0);
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    let reparsed = flow3d::io::parse_case(&text).unwrap();
    assert_eq!(reparsed, case.design);
}

#[test]
fn placement_files_roundtrip_through_legalization() {
    let case = demo();
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);

    // GP file round-trip (positions quantized to 1e-4 by the writer).
    let mut gp_text = String::new();
    flow3d::io::write_placement3d(&case.design, &global, &mut gp_text).unwrap();
    let global2 = flow3d::io::parse_placement3d(&case.design, &gp_text).unwrap();
    for i in 0..case.design.num_cells() {
        let c = CellId::new(i);
        assert!((global.pos(c).x - global2.pos(c).x).abs() < 1e-3);
        assert!((global.die_affinity(c) - global2.die_affinity(c)).abs() < 1e-3);
    }

    // Legalize the parsed placement and round-trip the legal output.
    let outcome = Flow3dLegalizer::default()
        .legalize(&case.design, &global2)
        .unwrap();
    let mut legal_text = String::new();
    flow3d::io::write_legal(&case.design, &outcome.placement, &mut legal_text).unwrap();
    let legal2 = flow3d::io::parse_legal(&case.design, &legal_text).unwrap();
    assert_eq!(legal2, outcome.placement);
    assert!(check_legal(&case.design, &legal2).is_legal());
}

#[test]
fn parse_errors_are_line_addressed() {
    let case = demo();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    // Corrupt one mid-file line.
    let corrupted = text.replace("NumNets", "NumNyets");
    let err = flow3d::io::parse_case(&corrupted).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line"), "{msg}");
}

use flow3d::db::CellId;

// --- Streaming reader: equivalence and fuzz-shaped robustness -----------
//
// `parse_case_reader` must accept exactly what `parse_case` accepts and
// produce an identical `Design`; on malformed input of any shape —
// truncation, hostile counts, duplicate names, non-UTF-8 bytes, reader
// failures — it must return a typed `IoError`, never panic.

#[test]
fn streaming_reader_matches_in_memory_parser() {
    let mut cfg = GeneratorConfig::iccad2023("case2").unwrap();
    cfg.scale = 0.1;
    let case = cfg.generate().unwrap();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    let in_memory = flow3d::io::parse_case(&text).unwrap();
    // A 7-byte buffer forces the reader through many short fills, so
    // line reassembly is genuinely exercised.
    let streamed =
        flow3d::io::parse_case_reader(std::io::BufReader::with_capacity(7, text.as_bytes()))
            .unwrap();
    assert_eq!(streamed, in_memory);
    assert_eq!(streamed, case.design);
}

#[test]
fn truncated_case_never_panics() {
    let case = demo();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let prefix = lines[..keep].join("\n");
        // Every prefix must come back as a typed result: an error naming
        // a line, or — once the mandatory sections are complete — a
        // design no bigger than the original.
        match flow3d::io::parse_case_reader(prefix.as_bytes()) {
            Ok(d) => assert!(d.num_cells() <= case.design.num_cells()),
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("line"), "untyped error at {keep} lines: {msg}");
            }
        }
    }
}

#[test]
fn oversized_counts_fail_without_huge_allocations() {
    let case = demo();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    // Truncate right after each count header and replace the count with
    // a hostile value: the reader must fail with "end of file" without
    // first attempting an instance-scale preallocation.
    for keyword in ["NumInstances", "NumNets"] {
        let mut mutated = String::new();
        for line in text.lines() {
            if line.starts_with(keyword) {
                mutated.push_str(&format!("{keyword} 987654321\n"));
                break;
            }
            mutated.push_str(line);
            mutated.push('\n');
        }
        let err = flow3d::io::parse_case_reader(mutated.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("end of file"), "{keyword}: {err}");
    }
}

#[test]
fn duplicate_instance_is_a_typed_error() {
    let case = demo();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    // Repeat the first instance line in place of the second: the name
    // collision must surface before any count bookkeeping.
    let first_inst = text
        .lines()
        .find(|l| l.starts_with("Inst "))
        .expect("case has instances")
        .to_string();
    let mut seen = 0;
    let mutated: String = text
        .lines()
        .map(|l| {
            if l.starts_with("Inst ") {
                seen += 1;
                if seen == 2 {
                    return format!("{first_inst}\n");
                }
            }
            format!("{l}\n")
        })
        .collect();
    let err = flow3d::io::parse_case_reader(mutated.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("duplicate instance"), "{err}");
}

#[test]
fn non_utf8_bytes_are_a_typed_error() {
    // Invalid from the first byte.
    let err = flow3d::io::parse_case_reader(&[0xff, 0xfe, 0x00, 0x41][..]).unwrap_err();
    assert!(err.to_string().contains("not valid UTF-8"), "{err}");

    // A valid prefix followed by garbage mid-file reports the bad line.
    let case = demo();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    let split = text.len() / 2;
    let mut bytes = text.as_bytes()[..split].to_vec();
    bytes.extend_from_slice(&[0xc3, 0x28, 0xa0, 0xa1, b'\n']);
    let err = flow3d::io::parse_case_reader(&bytes[..]).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("not valid UTF-8") || msg.contains("line"),
        "{msg}"
    );
}

#[test]
fn reader_failures_surface_as_read_errors() {
    struct Failing;
    impl std::io::Read for Failing {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk on fire"))
        }
    }
    let err = flow3d::io::parse_case_reader(std::io::BufReader::new(Failing)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("read error"), "{msg}");
    assert!(msg.contains("disk on fire"), "{msg}");
}

/// Regression: with heterogeneous row heights (92 vs 115), the die
/// outline is not a multiple of one die's row height. The reader must
/// take the outline from `DieSize` — deriving it from
/// `rows × row_height` clips the taller-outline die and the round-trip
/// silently shrinks the design.
#[test]
fn heterogeneous_row_heights_roundtrip_exactly() {
    let mut cfg = GeneratorConfig::million("m1h").unwrap();
    cfg.scale = 0.01;
    let case = cfg.generate().unwrap();
    let d = &case.design;
    let top = d.die(flow3d::db::DieId::TOP);
    assert_ne!(
        top.outline.height() % top.row_height,
        0,
        "case must exercise a non-aligned outline"
    );
    let mut text = String::new();
    flow3d::io::write_case(d, &mut text).unwrap();
    let reparsed = flow3d::io::parse_case(&text).unwrap();
    assert_eq!(reparsed, *d);
}
