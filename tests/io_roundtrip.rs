//! File-format round-trips on generated designs, including a full
//! legalize-from-files cycle.

use flow3d::prelude::*;

fn demo() -> flow3d_gen::GeneratedCase {
    GeneratorConfig::small_demo(123).generate().unwrap()
}

#[test]
fn case_file_roundtrip_is_lossless() {
    let case = demo();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    let reparsed = flow3d::io::parse_case(&text).unwrap();
    assert_eq!(reparsed, case.design);

    // Idempotent: writing the reparsed design gives identical text.
    let mut text2 = String::new();
    flow3d::io::write_case(&reparsed, &mut text2).unwrap();
    assert_eq!(text, text2);
}

#[test]
fn iccad2023_case_with_macros_roundtrips() {
    let mut cfg = GeneratorConfig::iccad2023("case2").unwrap();
    cfg.scale = 0.1;
    let case = cfg.generate().unwrap();
    assert!(case.design.num_macros() > 0);
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    let reparsed = flow3d::io::parse_case(&text).unwrap();
    assert_eq!(reparsed, case.design);
}

#[test]
fn placement_files_roundtrip_through_legalization() {
    let case = demo();
    let global = GlobalPlacer::new(GpConfig::default()).place_from(&case.design, &case.natural);

    // GP file round-trip (positions quantized to 1e-4 by the writer).
    let mut gp_text = String::new();
    flow3d::io::write_placement3d(&case.design, &global, &mut gp_text).unwrap();
    let global2 = flow3d::io::parse_placement3d(&case.design, &gp_text).unwrap();
    for i in 0..case.design.num_cells() {
        let c = CellId::new(i);
        assert!((global.pos(c).x - global2.pos(c).x).abs() < 1e-3);
        assert!((global.die_affinity(c) - global2.die_affinity(c)).abs() < 1e-3);
    }

    // Legalize the parsed placement and round-trip the legal output.
    let outcome = Flow3dLegalizer::default()
        .legalize(&case.design, &global2)
        .unwrap();
    let mut legal_text = String::new();
    flow3d::io::write_legal(&case.design, &outcome.placement, &mut legal_text).unwrap();
    let legal2 = flow3d::io::parse_legal(&case.design, &legal_text).unwrap();
    assert_eq!(legal2, outcome.placement);
    assert!(check_legal(&case.design, &legal2).is_legal());
}

#[test]
fn parse_errors_are_line_addressed() {
    let case = demo();
    let mut text = String::new();
    flow3d::io::write_case(&case.design, &mut text).unwrap();
    // Corrupt one mid-file line.
    let corrupted = text.replace("NumNets", "NumNyets");
    let err = flow3d::io::parse_case(&corrupted).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line"), "{msg}");
}

use flow3d::db::CellId;
