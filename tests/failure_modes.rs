//! Failure injection: every legalizer must reject impossible inputs with
//! a typed error instead of panicking or emitting an illegal placement.

use flow3d::db::{DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d::prelude::*;
use flow3d_core::LegalizeError;

fn all_legalizers() -> Vec<Box<dyn flow3d_core::Legalizer>> {
    vec![
        Box::new(TetrisLegalizer::default()),
        Box::new(AbacusLegalizer::default()),
        Box::new(BonnLegalizer::default()),
        Box::new(Flow3dLegalizer::default()),
    ]
}

#[test]
fn overfull_stack_is_rejected_by_every_legalizer() {
    // 20 cells of 100x10 = 20000 DBU² vs two dies of 200x10 = 4000 DBU².
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 100, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 200, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 200, 10), 10, 1, 1.0));
    for i in 0..20 {
        b = b.cell(format!("u{i}"), "C");
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(20);
    for lg in all_legalizers() {
        let err = lg.legalize(&design, &global).unwrap_err();
        assert!(
            matches!(
                err,
                LegalizeError::DieOverflow { .. }
                    | LegalizeError::NoPosition { .. }
                    | LegalizeError::NoAugmentingPath { .. }
            ),
            "{}: unexpected error {err}",
            lg.name()
        );
    }
}

#[test]
fn cell_wider_than_every_segment_is_rejected() {
    // A macro chops both rows; the 150-wide cell fits in no segment.
    let design = DesignBuilder::new("t")
        .technology(
            TechnologySpec::new("T")
                .lib_cell(LibCellSpec::std_cell("WIDE", 150, 10))
                .lib_cell(LibCellSpec::macro_cell("BLK", 100, 20)),
        )
        .die(DieSpec::new("bottom", "T", (0, 0, 240, 20), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 240, 20), 10, 1, 1.0))
        .macro_inst("blk0", "BLK", "bottom", 60, 0)
        .macro_inst("blk1", "BLK", "top", 60, 0)
        .cell("u0", "WIDE")
        .build()
        .unwrap();
    let global = Placement3d::new(1);
    for lg in all_legalizers() {
        let err = lg.legalize(&design, &global).unwrap_err();
        assert!(
            matches!(err, LegalizeError::NoPosition { .. }),
            "{}: unexpected error {err}",
            lg.name()
        );
    }
}

#[test]
fn placement_size_mismatch_is_rejected() {
    let design = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 10, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 100, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 100, 10), 10, 1, 1.0))
        .cell("u0", "C")
        .cell("u1", "C")
        .build()
        .unwrap();
    let wrong = Placement3d::new(1);
    for lg in all_legalizers() {
        let err = lg.legalize(&design, &wrong).unwrap_err();
        assert!(
            matches!(err, LegalizeError::PlacementMismatch { .. }),
            "{}: unexpected error {err}",
            lg.name()
        );
    }
}

#[test]
fn utilization_cap_is_honored_not_silently_exceeded() {
    // Cells fit physically but exceed the 40% caps on a single die; they
    // must end up split (3D-Flow) or be rejected (2D methods cannot split
    // since all affinities point to the bottom die and the partitioner
    // rebalances for everyone — so everyone succeeds and stays legal).
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 20, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 200, 20), 10, 1, 0.4))
        .die(DieSpec::new("top", "T", (0, 0, 200, 20), 10, 1, 0.4));
    for i in 0..12 {
        b = b.cell(format!("u{i}"), "C"); // 12*200 = 2400 vs 1600/die cap
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(12);
    for lg in all_legalizers() {
        let outcome = lg.legalize(&design, &global).unwrap();
        let report = check_legal(&design, &outcome.placement);
        assert!(report.is_legal(), "{}: {report}", lg.name());
    }
}

#[test]
fn zero_row_die_is_handled_without_panicking() {
    // The top die's outline is shorter than its row height: zero rows,
    // zero capacity. Every legalizer must either place everything on the
    // bottom die legally or reject with a typed error — never panic.
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 20, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 200, 20), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 200, 8), 10, 1, 1.0));
    for i in 0..6 {
        b = b.cell(format!("u{i}"), "C");
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(6);
    for lg in all_legalizers() {
        // A typed rejection is acceptable; success must be legal and
        // entirely on the die that has rows.
        if let Ok(outcome) = lg.legalize(&design, &global) {
            let report = check_legal(&design, &outcome.placement);
            assert!(report.is_legal(), "{}: {report}", lg.name());
            for i in 0..6 {
                assert_eq!(
                    outcome.placement.die(flow3d::db::CellId::new(i)).index(),
                    0,
                    "{}: cell {i} placed on the zero-row die",
                    lg.name()
                );
            }
        }
    }
}

#[test]
fn single_row_design_is_legalized() {
    // One row per die: placerow has exactly one segment per die to work
    // with and the flow graph is a single horizontal chain.
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 300, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 300, 10), 10, 1, 1.0));
    for i in 0..10 {
        b = b.cell(format!("u{i}"), "C"); // 10*30 = 300 of 600 total
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(10);
    for lg in all_legalizers() {
        let outcome = lg
            .legalize(&design, &global)
            .unwrap_or_else(|e| panic!("{}: {e}", lg.name()));
        let report = check_legal(&design, &outcome.placement);
        assert!(report.is_legal(), "{}: {report}", lg.name());
    }
}

#[test]
fn utilization_exactly_at_cap_is_feasible() {
    // Total cell area equals the combined utilization caps to the DBU²:
    // 10 cells of 20x10 = 2000 against two dies allowing exactly 1000
    // each (200x10 at 50%). The boundary must count as feasible — an
    // off-by-one in the cap accounting would reject or overfill here.
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 20, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 200, 10), 10, 1, 0.5))
        .die(DieSpec::new("top", "T", (0, 0, 200, 10), 10, 1, 0.5));
    for i in 0..10 {
        b = b.cell(format!("u{i}"), "C");
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(10);
    let outcome = Flow3dLegalizer::default()
        .legalize(&design, &global)
        .expect("exact-cap instance must legalize");
    let report = check_legal(&design, &outcome.placement);
    assert!(report.is_legal(), "{report}");
}

#[test]
fn more_threads_than_rows_matches_serial() {
    // 64 workers against a design with one row per die: most workers
    // never claim an item, and the result must still be bit-identical to
    // the single-threaded run.
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 30, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 300, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 300, 10), 10, 1, 1.0));
    for i in 0..12 {
        b = b.cell(format!("u{i}"), "C"); // forces flow onto both dies
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(12);
    let serial = Flow3dLegalizer::new(Flow3dConfig {
        threads: 1,
        ..Default::default()
    })
    .legalize(&design, &global)
    .expect("serial run");
    let wide = Flow3dLegalizer::new(Flow3dConfig {
        threads: 64,
        ..Default::default()
    })
    .legalize(&design, &global)
    .expect("64-thread run");
    assert_eq!(wide.placement, serial.placement);
    assert_eq!(wide.stats, serial.stats);
}

#[test]
fn empty_design_succeeds_everywhere() {
    let design = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 10, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 100, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 100, 10), 10, 1, 1.0))
        .build()
        .unwrap();
    for lg in all_legalizers() {
        let outcome = lg.legalize(&design, &Placement3d::new(0)).unwrap();
        assert_eq!(outcome.placement.num_cells(), 0, "{}", lg.name());
    }
}
