//! Failure injection: every legalizer must reject impossible inputs with
//! a typed error instead of panicking or emitting an illegal placement.

use flow3d::db::{DesignBuilder, DieSpec, LibCellSpec, Placement3d, TechnologySpec};
use flow3d::prelude::*;
use flow3d_core::LegalizeError;

fn all_legalizers() -> Vec<Box<dyn flow3d_core::Legalizer>> {
    vec![
        Box::new(TetrisLegalizer::default()),
        Box::new(AbacusLegalizer::default()),
        Box::new(BonnLegalizer::default()),
        Box::new(Flow3dLegalizer::default()),
    ]
}

#[test]
fn overfull_stack_is_rejected_by_every_legalizer() {
    // 20 cells of 100x10 = 20000 DBU² vs two dies of 200x10 = 4000 DBU².
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 100, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 200, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 200, 10), 10, 1, 1.0));
    for i in 0..20 {
        b = b.cell(format!("u{i}"), "C");
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(20);
    for lg in all_legalizers() {
        let err = lg.legalize(&design, &global).unwrap_err();
        assert!(
            matches!(
                err,
                LegalizeError::DieOverflow { .. }
                    | LegalizeError::NoPosition { .. }
                    | LegalizeError::NoAugmentingPath { .. }
            ),
            "{}: unexpected error {err}",
            lg.name()
        );
    }
}

#[test]
fn cell_wider_than_every_segment_is_rejected() {
    // A macro chops both rows; the 150-wide cell fits in no segment.
    let design = DesignBuilder::new("t")
        .technology(
            TechnologySpec::new("T")
                .lib_cell(LibCellSpec::std_cell("WIDE", 150, 10))
                .lib_cell(LibCellSpec::macro_cell("BLK", 100, 20)),
        )
        .die(DieSpec::new("bottom", "T", (0, 0, 240, 20), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 240, 20), 10, 1, 1.0))
        .macro_inst("blk0", "BLK", "bottom", 60, 0)
        .macro_inst("blk1", "BLK", "top", 60, 0)
        .cell("u0", "WIDE")
        .build()
        .unwrap();
    let global = Placement3d::new(1);
    for lg in all_legalizers() {
        let err = lg.legalize(&design, &global).unwrap_err();
        assert!(
            matches!(err, LegalizeError::NoPosition { .. }),
            "{}: unexpected error {err}",
            lg.name()
        );
    }
}

#[test]
fn placement_size_mismatch_is_rejected() {
    let design = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 10, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 100, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 100, 10), 10, 1, 1.0))
        .cell("u0", "C")
        .cell("u1", "C")
        .build()
        .unwrap();
    let wrong = Placement3d::new(1);
    for lg in all_legalizers() {
        let err = lg.legalize(&design, &wrong).unwrap_err();
        assert!(
            matches!(err, LegalizeError::PlacementMismatch { .. }),
            "{}: unexpected error {err}",
            lg.name()
        );
    }
}

#[test]
fn utilization_cap_is_honored_not_silently_exceeded() {
    // Cells fit physically but exceed the 40% caps on a single die; they
    // must end up split (3D-Flow) or be rejected (2D methods cannot split
    // since all affinities point to the bottom die and the partitioner
    // rebalances for everyone — so everyone succeeds and stays legal).
    let mut b = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 20, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 200, 20), 10, 1, 0.4))
        .die(DieSpec::new("top", "T", (0, 0, 200, 20), 10, 1, 0.4));
    for i in 0..12 {
        b = b.cell(format!("u{i}"), "C"); // 12*200 = 2400 vs 1600/die cap
    }
    let design = b.build().unwrap();
    let global = Placement3d::new(12);
    for lg in all_legalizers() {
        let outcome = lg.legalize(&design, &global).unwrap();
        let report = check_legal(&design, &outcome.placement);
        assert!(report.is_legal(), "{}: {report}", lg.name());
    }
}

#[test]
fn empty_design_succeeds_everywhere() {
    let design = DesignBuilder::new("t")
        .technology(TechnologySpec::new("T").lib_cell(LibCellSpec::std_cell("C", 10, 10)))
        .die(DieSpec::new("bottom", "T", (0, 0, 100, 10), 10, 1, 1.0))
        .die(DieSpec::new("top", "T", (0, 0, 100, 10), 10, 1, 1.0))
        .build()
        .unwrap();
    for lg in all_legalizers() {
        let outcome = lg.legalize(&design, &Placement3d::new(0)).unwrap();
        assert_eq!(outcome.placement.num_cells(), 0, "{}", lg.name());
    }
}
