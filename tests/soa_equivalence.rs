//! SoA equivalence battery: the flat [`SoaView`] columns must agree
//! field-for-field with the id-map accessors they flatten, and running
//! the legalizer through the SoA path must be *bit-identical* to the
//! id-map path — same placement bytes, same stats counters — at every
//! thread count. The `soa_view` config knob is a pure data-layout
//! choice; these tests are the executable form of that contract.

use flow3d::db::{
    CellId, DesignBuilder, DieId, DieSpec, LibCellSpec, Placement3d, SoaView, TechnologySpec,
};
use flow3d::prelude::*;
use flow3d_geom::FPoint;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// A random heterogeneous instance: up to 40 cells with widths 10–50 on
/// two 400x40 dies with different techs, anchored anywhere (including
/// outside the outline).
fn arb_instance() -> impl Strategy<Value = (Vec<i64>, Vec<(f64, f64, f64)>)> {
    (1usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(1i64..=5, n),
            proptest::collection::vec((-50.0f64..450.0, -20.0f64..60.0, 0.0f64..1.0), n),
        )
    })
}

fn build(widths: &[i64], anchors: &[(f64, f64, f64)]) -> (flow3d::db::Design, Placement3d) {
    let mut b = DesignBuilder::new("soa_prop")
        .technology(
            TechnologySpec::new("TA")
                .lib_cell(LibCellSpec::std_cell("C1", 10, 10))
                .lib_cell(LibCellSpec::std_cell("C2", 20, 10))
                .lib_cell(LibCellSpec::std_cell("C3", 30, 10))
                .lib_cell(LibCellSpec::std_cell("C4", 40, 10))
                .lib_cell(LibCellSpec::std_cell("C5", 50, 10)),
        )
        .technology(
            TechnologySpec::new("TB")
                .lib_cell(LibCellSpec::std_cell("C1", 12, 8))
                .lib_cell(LibCellSpec::std_cell("C2", 24, 8))
                .lib_cell(LibCellSpec::std_cell("C3", 36, 8))
                .lib_cell(LibCellSpec::std_cell("C4", 48, 8))
                .lib_cell(LibCellSpec::std_cell("C5", 60, 8)),
        )
        .die(DieSpec::new("bottom", "TA", (0, 0, 400, 40), 10, 2, 0.95))
        .die(DieSpec::new("top", "TB", (0, 0, 400, 40), 8, 2, 0.95));
    for (i, &w) in widths.iter().enumerate() {
        b = b.cell(format!("u{i}"), format!("C{w}"));
    }
    let design = b.build().unwrap();
    let mut gp = Placement3d::new(widths.len());
    for (i, &(x, y, z)) in anchors.iter().enumerate() {
        let c = CellId::new(i);
        gp.set_pos(c, FPoint::new(x, y));
        gp.set_die_affinity(c, z);
    }
    (design, gp)
}

fn legal_bytes(design: &flow3d::db::Design, placement: &flow3d::db::LegalPlacement) -> String {
    let mut text = String::new();
    flow3d::io::write_legal(design, placement, &mut text).expect("serialize legal placement");
    text
}

/// Legalizes with the given data-layout choice and thread count,
/// returning the byte-comparison domain (legal file text + stats).
fn run_layout(
    design: &flow3d::db::Design,
    gp: &Placement3d,
    soa_view: bool,
    threads: usize,
) -> Option<(String, flow3d_core::LegalizeStats)> {
    let cfg = Flow3dConfig {
        soa_view,
        threads,
        ..Default::default()
    };
    // A typed rejection is fine — but both layouts must agree on it.
    Flow3dLegalizer::new(cfg)
        .legalize(design, gp)
        .ok()
        .map(|o| (legal_bytes(design, &o.placement), o.stats))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full view and the geometry-only view round-trip against the
    /// `Design`/`Placement3d` accessors field for field.
    #[test]
    fn soa_view_round_trips_against_design(
        (widths, anchors) in arb_instance()
    ) {
        let (design, gp) = build(&widths, &anchors);

        let full = SoaView::build(&design, &gp);
        prop_assert!(full.is_consistent(&design, Some(&gp)));
        prop_assert!(full.has_targets());
        prop_assert_eq!(full.num_cells(), design.num_cells());
        prop_assert_eq!(full.num_dies(), design.num_dies());
        for d in 0..design.num_dies() {
            let die = DieId::new(d);
            prop_assert_eq!(full.cell_height(die), design.cell_height(die));
            let column = full.width_column(die);
            prop_assert_eq!(column.len(), design.num_cells());
            for (i, &column_width) in column.iter().enumerate() {
                let cell = CellId::new(i);
                prop_assert_eq!(full.cell_width(cell, die), design.cell_width(cell, die));
                prop_assert_eq!(column_width, design.cell_width(cell, die));
            }
        }
        for i in 0..design.num_cells() {
            let cell = CellId::new(i);
            prop_assert_eq!(full.target(cell), gp.pos(cell).round());
            let die = gp.nearest_die(cell, design.num_dies());
            prop_assert_eq!(full.assigned_die(cell), die);
            let rows = design.die(die).num_rows() as u32;
            prop_assert!(full.assigned_row(cell) < rows.max(1));
        }

        let geom = SoaView::geometry(&design);
        prop_assert!(geom.is_consistent(&design, None));
        prop_assert!(!geom.has_targets());
        for d in 0..design.num_dies() {
            let die = DieId::new(d);
            prop_assert_eq!(geom.width_column(die), full.width_column(die));
        }
    }

    /// Legalizing through the SoA columns is bit-identical to the id-map
    /// path — placement bytes and stats — at 1 and 8 threads.
    #[test]
    fn soa_path_is_bit_identical_to_idmap_path(
        (widths, anchors) in arb_instance()
    ) {
        let (design, gp) = build(&widths, &anchors);
        for threads in THREAD_COUNTS {
            let soa = run_layout(&design, &gp, true, threads);
            let idmap = run_layout(&design, &gp, false, threads);
            prop_assert_eq!(
                soa, idmap,
                "soa_view changed the outcome at threads={}", threads
            );
        }
    }
}

/// The same bit-identity contract at contest scale: generated cases,
/// both data layouts, 1 and 8 workers, compared on bytes and stats.
#[test]
fn soa_path_matches_idmap_on_generated_cases() {
    let mut cases = vec![("small_demo(5)", GeneratorConfig::small_demo(5))];
    let mut c2022 = GeneratorConfig::iccad2022("case2").unwrap();
    c2022.scale = 0.1;
    cases.push(("iccad2022_case2@0.1", c2022));
    let mut c2023 = GeneratorConfig::iccad2023("case2").unwrap();
    c2023.scale = 0.05;
    cases.push(("iccad2023_case2@0.05", c2023));

    for (label, cfg) in cases {
        let generated = cfg.generate().expect("generation failed");
        let gp = GlobalPlacer::new(GpConfig::default())
            .place_from(&generated.design, &generated.natural);
        let view = SoaView::build(&generated.design, &gp);
        assert!(view.is_consistent(&generated.design, Some(&gp)), "{label}");
        for threads in THREAD_COUNTS {
            let soa = run_layout(&generated.design, &gp, true, threads);
            let idmap = run_layout(&generated.design, &gp, false, threads);
            assert!(soa.is_some(), "{label}: legalization failed");
            assert_eq!(soa, idmap, "{label}: layouts diverge at threads={threads}");
        }
    }
}

/// The incremental (ECO) path takes the same `soa_view` knob; it must be
/// just as layout-blind as the batch path.
#[test]
fn eco_path_is_layout_blind() {
    let generated = GeneratorConfig::small_demo(11)
        .generate()
        .expect("generation failed");
    let design = generated.design;
    let gp = GlobalPlacer::new(GpConfig::default()).place_from(&design, &generated.natural);
    let base = Flow3dLegalizer::default()
        .legalize(&design, &gp)
        .expect("base legalization")
        .placement;
    let center = design.die(DieId::BOTTOM).outline.center();
    let moves: Vec<flow3d_core::CellMove> = (0..design.num_cells())
        .step_by(7)
        .map(|i| {
            let cell = CellId::new(i);
            let p = base.pos(cell);
            flow3d_core::CellMove {
                cell,
                target: flow3d_geom::Point::new((p.x + center.x) / 2, (p.y + center.y) / 2),
                die: None,
            }
        })
        .collect();

    let mut outcomes = Vec::new();
    for soa_view in [true, false] {
        let lg = Flow3dLegalizer::new(Flow3dConfig {
            soa_view,
            ..Default::default()
        });
        let out = lg
            .legalize_incremental(&design, &base, &moves)
            .expect("incremental legalization");
        outcomes.push((legal_bytes(&design, &out.placement), out.stats));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "ECO outcome depends on data layout"
    );
}
