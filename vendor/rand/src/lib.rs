#![warn(missing_docs)]
//! Vendored, dependency-free stand-in for the subset of the [`rand`]
//! crate (0.9 API) that this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace cannot
//! fetch the real `rand`. The benchmark generator only needs a seedable
//! small PRNG and uniform `random_range` sampling over integer and float
//! ranges, which this crate provides with the same method names and
//! deterministic behaviour (a fixed seed always yields the same stream).
//!
//! The generator quality target is *benchmark synthesis*, not
//! cryptography: [`rngs::SmallRng`] is a SplitMix64 stream, which passes the
//! statistical checks the generator's tests make (uniformity, mean and
//! variance of Irwin–Hall normals) and is stable across platforms.
//!
//! [`rand`]: https://docs.rs/rand

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable random number generators (the subset of `rand::SeedableRng`
/// the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. The same seed always
    /// produces the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports `lo..hi` and `lo..=hi` over the primitive integer types
    /// and `lo..hi` over `f32`/`f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore> Rng for G {}

/// Ranges that can be sampled uniformly. Implemented for the standard
/// half-open and inclusive ranges over primitives.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 high bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + (self.end as f64 - self.start as f64) * unit) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Small, fast PRNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small deterministic PRNG (SplitMix64 stream).
    ///
    /// Stands in for `rand::rngs::SmallRng`: not cryptographically
    /// secure, but fast, seedable, and statistically sound for benchmark
    /// synthesis.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-whiten so that nearby seeds (0, 1, 2, ...) do not start
            // from nearby internal states.
            let mut rng = Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0i64..1000), b.random_range(0i64..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(8);
        let va: Vec<i64> = (0..8).map(|_| a.random_range(0i64..1_000_000)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.random_range(0i64..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.random_range(3u8..=9);
            assert!((3..=9).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn singleton_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(rng.random_range(4i64..=4), 4);
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }
}
