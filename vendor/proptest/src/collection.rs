//! Collection strategies: [`vec()`] with flexible size specifications.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-exclusive length range accepted by [`vec()`]. Convertible
/// from an exact `usize`, a `lo..hi` range, and a `lo..=hi` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A strategy producing `Vec`s whose length is drawn from `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span) as usize
            };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_is_exact() {
        let mut rng = TestRng::deterministic();
        let s = vec(0i64..5, 7usize);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng).len(), 7);
        }
    }

    #[test]
    fn range_sizes_stay_in_range() {
        let mut rng = TestRng::deterministic();
        let s = vec(0i64..5, 2..6);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn inclusive_sizes_reach_upper_bound() {
        let mut rng = TestRng::deterministic();
        let s = vec(0i64..5, 0..=2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.new_value(&mut rng).len()] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn elements_come_from_element_strategy() {
        let mut rng = TestRng::deterministic();
        let s = vec(10i64..20, 1..30);
        for _ in 0..50 {
            assert!(s.new_value(&mut rng).iter().all(|v| (10..20).contains(v)));
        }
    }
}
