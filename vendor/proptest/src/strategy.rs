//! The [`Strategy`] trait and the built-in strategies: primitive ranges,
//! tuples, [`prop_map`](Strategy::prop_map), and
//! [`prop_flat_map`](Strategy::prop_flat_map).

use crate::test_runner::TestRng;

/// A recipe for generating values of type [`Self::Value`].
///
/// Unlike the real proptest, strategies here are plain generators: no
/// value trees, no shrinking. `new_value` draws one value from the
/// deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// A strategy generating a value, then generating from the strategy
    /// `f` returns for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (compatibility shim for the real crate's
    /// `BoxedStrategy`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A heap-allocated, type-erased strategy. See [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<Value = T>>,
}

trait DynStrategy {
    type Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64();
                (self.start as f64 + (self.end as f64 - self.start as f64) * unit) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..500 {
            let v = (3i64..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
            let w = (2u8..=5).new_value(&mut rng);
            assert!((2..=5).contains(&w));
            let f = (-1.0f64..1.0).new_value(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = TestRng::deterministic();
        let (a, b, c, d) = (0i64..4, 10i64..14, 0u8..2, 0usize..3).new_value(&mut rng);
        assert!((0..4).contains(&a));
        assert!((10..14).contains(&b));
        assert!(c < 2);
        assert!(d < 3);
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::deterministic();
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((0..20).contains(&v));
        }
    }

    #[test]
    fn flat_map_chains_dependent_strategies() {
        let mut rng = TestRng::deterministic();
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0i64..10, n));
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn boxed_strategy_still_generates() {
        let mut rng = TestRng::deterministic();
        let s = (0i64..5).prop_map(|x| x + 100).boxed();
        let v = s.new_value(&mut rng);
        assert!((100..105).contains(&v));
    }
}
