#![warn(missing_docs)]
//! Vendored, dependency-free stand-in for the subset of the [`proptest`]
//! crate that this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace cannot
//! fetch the real `proptest`. This crate re-implements the pieces the
//! test suites rely on with the same names and macro syntax:
//!
//! * the [`strategy::Strategy`] trait with
//!   [`prop_map`](strategy::Strategy::prop_map) and
//!   [`prop_flat_map`](strategy::Strategy::prop_flat_map), implemented for integer
//!   and float ranges and tuples of strategies;
//! * [`collection::vec`] with exact, half-open, and inclusive size
//!   ranges;
//! * [`arbitrary::any`] for the primitive types the tests draw from;
//! * the [`proptest!`] macro (block form with an optional
//!   `#![proptest_config(..)]` attribute, and the
//!   `proptest!(config, |(pat in strategy)| { .. })` closure form) plus
//!   [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Differences from the real crate: inputs are generated from a fixed
//! deterministic seed (every run tests the same cases — reproducible by
//! construction), failing cases are reported by the standard panic
//! message rather than shrunk to a minimal counterexample, and
//! `prop_assume!` skips the remainder of the current case without
//! replacement sampling.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a property test, with an optional format
/// message. Maps to a standard `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test, with an optional format
/// message. Maps to a standard `assert_eq!` (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the remainder of the current test case when the precondition
/// does not hold (the case still counts toward the configured total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests.
///
/// Block form (items), with or without a leading
/// `#![proptest_config(expr)]`:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
///
/// Closure form (statement):
///
/// ```
/// use proptest::prelude::*;
///
/// proptest!(ProptestConfig::with_cases(8), |(v in proptest::collection::vec(0u8..4, 1..10))| {
///     prop_assert!(!v.is_empty());
/// });
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal: expand a list of test items with a shared config. Must be
    // the first arm so that the trailing catch-all cannot shadow it.
    (@blocks ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $config,
                    &($(($strategy),)+),
                    |($($pat,)+)| $body,
                );
            }
        )*
    };

    // Block form with config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@blocks ($config) $($rest)*);
    };

    // Block form without config attribute. Matched structurally (not with
    // a `tt` catch-all) and listed BEFORE the closure form: the closure
    // arm starts with an `expr` fragment, and a failed `expr` parse is a
    // hard error rather than a fall-through to the next arm, so anything
    // starting with `fn`/`#[..]` must be consumed before that arm is
    // tried.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest!(
            @blocks ($crate::test_runner::ProptestConfig::default())
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )+
        );
    };

    // Closure form: proptest!(config, |(pat in strategy, ...)| { body })
    (
        $config:expr,
        |($($pat:pat in $strategy:expr),+ $(,)?)| $body:block
    ) => {{
        $crate::test_runner::run_cases(
            $config,
            &($(($strategy),)+),
            |($($pat,)+)| $body,
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 1u8..4, z in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..4).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn assume_skips_cases(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x was {}", x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Doc comments on the test item must be accepted.
        #[test]
        fn config_attribute_form(pair in (0i64..10, 0i64..10)) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }
    }

    #[test]
    fn closure_form_runs() {
        let mut total = 0usize;
        proptest!(ProptestConfig::with_cases(16), |(
            v in crate::collection::vec(1i64..=5, 1..8)
        )| {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (1..=5).contains(&x)));
            total += 1;
        });
        assert_eq!(total, 16);
    }

    #[test]
    fn qualified_macro_paths_work() {
        crate::proptest!(crate::test_runner::ProptestConfig::with_cases(2), |(x in 0i64..3)| {
            crate::prop_assume!(x >= 0);
            crate::prop_assert!(x < 3);
        });
    }

    proptest! {
        #[test]
        fn flat_map_and_map_compose(
            (n, v) in (1usize..6).prop_flat_map(|n| {
                ((1usize..6).prop_map(move |_| n), crate::collection::vec(0i64..10, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn any_i64_covers_sign_bits(x in any::<i64>()) {
            // Not much to assert beyond type-correctness; the value is an
            // unrestricted i64.
            let _ = x;
        }
    }
}
