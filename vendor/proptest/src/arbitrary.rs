//! [`any`] and the [`Arbitrary`] trait for unconstrained primitive
//! generation.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one unrestricted value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[-1e9, 1e9)` — the real crate generates special values
    /// too, but the workspace only uses `any::<f64>()`-style draws for
    /// ordinary arithmetic.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_i64_spans_signs() {
        let mut rng = TestRng::deterministic();
        let s = any::<i64>();
        let values: Vec<i64> = (0..100).map(|_| s.new_value(&mut rng)).collect();
        assert!(values.iter().any(|&v| v < 0));
        assert!(values.iter().any(|&v| v > 0));
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::deterministic();
        let s = any::<bool>();
        let values: Vec<bool> = (0..64).map(|_| s.new_value(&mut rng)).collect();
        assert!(values.contains(&true) && values.contains(&false));
    }
}
