//! The test-runner configuration and the deterministic input generator.

/// Configuration for a property test (the subset of
/// `proptest::test_runner::Config` this workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than the real crate's 256, chosen so the whole
    /// workspace property suite stays inside a quick `cargo test` budget.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic PRNG driving input generation (SplitMix64).
///
/// Every test starts from the same fixed seed, so a failure is always
/// reproducible by re-running the test — the replacement for the real
/// crate's persisted failure seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed generator used by the [`proptest!`](crate::proptest)
    /// macro.
    pub fn deterministic() -> Self {
        Self::from_seed(0x003D_F10C_5EED)
    }

    /// A generator starting from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, span)`.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample an empty range");
        self.next_u64() % span
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives one property test: draws `config.cases` values from `strategy`
/// and feeds each to `body`. Used by the [`proptest!`](crate::proptest)
/// macro expansion; the generic signature pins the closure's argument
/// type to the strategy's `Value`, which plain closure inference cannot
/// do on its own.
pub fn run_cases<S, F>(config: ProptestConfig, strategy: &S, mut body: F)
where
    S: crate::strategy::Strategy,
    F: FnMut(S::Value),
{
    let mut rng = TestRng::deterministic();
    for _ in 0..config.cases {
        body(strategy.new_value(&mut rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams_match() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_below() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_is_in_unit_interval() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
