#![warn(missing_docs)]
//! Vendored, dependency-free stand-in for the subset of the [`criterion`]
//! crate that this workspace's benches use.
//!
//! The build environment has no crates.io access, so the workspace cannot
//! fetch the real `criterion`. This crate provides the same API surface —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple wall-clock harness: each benchmark is warmed up once, timed for
//! a fixed number of samples, and reported as median/min/max time per
//! iteration on stdout.
//!
//! No statistical analysis, no HTML reports, no comparison to saved
//! baselines — just honest relative numbers good enough for "is the
//! instrumented build within noise of the uninstrumented one".
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// A benchmark identifier, optionally combining a function name with a
/// parameter value (`BenchmarkId::new`) or just a parameter
/// (`BenchmarkId::from_parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labeled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id labeled by the parameter alone (the group name supplies the
    /// function part).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then `sample_count`
    /// timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} no samples");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<40} median {median:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        samples.len()
    );
}

fn run_one(name: &str, sample_count: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut bencher);
    report(name, &mut bencher.samples);
}

/// A named set of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in this group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs one benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark manager handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    fn new() -> Self {
        Self {
            default_sample_size: 10,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let samples = self.default_sample_size.max(1);
        run_one(name, samples, f);
        self
    }
}

/// Collects benchmark functions into a runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::__new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!` (the benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Internal constructor used by [`criterion_group!`]; not part of the
    /// mirrored API.
    #[doc(hidden)]
    pub fn __new() -> Self {
        Self::new()
    }
}

/// Re-export so `criterion::black_box` keeps working (the std version).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion::__new();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &5usize, |b, &n| {
            b.iter(|| {
                calls += 1;
                n * 2
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::__new();
        let mut calls = 0usize;
        c.bench_function("standalone", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("abc").to_string(), "abc");
    }
}
